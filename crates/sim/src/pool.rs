//! Dependency-free work-stealing thread pool for campaign-level parallelism.
//!
//! The DES engine itself is single-threaded by design (determinism is a
//! hard requirement — see the crate docs); the unit of parallelism is one
//! *whole simulation*, e.g. one campaign cell of `omx-bench faults` or
//! `omx-bench scale`. Those cells are embarrassingly parallel: each owns
//! its cluster, its seed, and its telemetry buffers, and never touches
//! shared state until its result is committed. This module provides the
//! substrate that runs them concurrently:
//!
//! * [`Pool`] — a fixed-size pool of `std::thread` workers. Each worker
//!   owns a deque (LIFO for its own tasks, FIFO for thieves); external
//!   submitters push into a shared injector queue; idle workers steal
//!   from the injector first and then from their siblings, and park on a
//!   condvar when the whole pool is dry (no spin-waiting between
//!   campaign phases).
//! * [`Pool::scope`] — structured parallelism over borrowed data, in the
//!   style of `std::thread::scope`: tasks spawned inside the scope may
//!   borrow from the enclosing frame, and the scope joins them all before
//!   returning. A panic in any task is captured and re-raised on the
//!   submitting thread, so a failing campaign cell fails the campaign
//!   exactly as it would serially.
//! * [`Pool::map`] — ordered fork-join map: results are committed into
//!   their input-index slot, so the output `Vec` is byte-for-byte the one
//!   a serial loop would produce regardless of execution interleaving.
//!   This is the determinism contract every `omx-bench` report relies on:
//!   **parallelism may reorder execution, never observable output.**
//! * [`set_jobs`] / [`configured_jobs`] / [`with_jobs`] / [`global`] —
//!   process-wide worker-count policy (CLI `--jobs` > `OMX_JOBS` env >
//!   `available_parallelism`), a thread-local override for forcing the
//!   serial path (used by the `campaign/*_serial` baseline benches), and
//!   the lazily-built shared pool.
//!
//! The workspace is offline-by-design, so this is `std`-only — no rayon,
//! no crossbeam. Deques are mutex-protected `VecDeque`s: a campaign cell
//! runs for milliseconds, so queue-transfer cost is noise; what matters is
//! that idle workers *park* instead of burning a core, and that work moves
//! to whichever worker is free (cell durations vary by an order of
//! magnitude across a sweep, so static partitioning would leave cores idle
//! behind the slowest shard).

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread::JoinHandle;

/// Parse a jobs value from an environment variable or CLI string: a
/// positive integer, surrounding whitespace tolerated. Returns `None` for
/// anything else (`"abc"`, `"0"`, `"-2"`, `""`).
pub fn parse_jobs_value(raw: &str) -> Option<usize> {
    match raw.trim().parse::<usize>() {
        Ok(n) if n > 0 => Some(n),
        _ => None,
    }
}

/// Read a positive-integer jobs setting from environment variable `name`.
/// A set-but-invalid value is rejected with a one-line stderr warning
/// (once per variable per process) naming the rejected value — silently
/// falling through to auto-detection hid `OMX_JOBS=abc` typos entirely.
fn jobs_env(name: &str, warned: &AtomicBool) -> Option<usize> {
    let raw = std::env::var(name).ok()?;
    let parsed = parse_jobs_value(&raw);
    if parsed.is_none() && !warned.swap(true, Ordering::Relaxed) {
        eprintln!("warning: ignoring invalid {name}={raw:?} (expected a positive integer)");
    }
    parsed
}

/// A type-erased unit of work. Every task is wrapped (by [`Scope::spawn`]
/// or [`Pool::spawn`]) in a `catch_unwind` shim before it is boxed, so a
/// worker thread never unwinds out of its loop.
type Task = Box<dyn FnOnce() + Send + 'static>;

/// State shared between the pool handle and its workers.
struct Shared {
    /// FIFO queue for tasks submitted from outside the pool.
    injector: Mutex<VecDeque<Task>>,
    /// Per-worker deques: the owner pushes/pops at the back (LIFO keeps
    /// nested work hot in cache), thieves and the injector drain take the
    /// front (FIFO preserves rough submission order under stealing).
    worker_queues: Vec<Mutex<VecDeque<Task>>>,
    /// Wakeup epoch: bumped under the lock on every push and on shutdown,
    /// so a worker that re-checks the queues and then waits for the epoch
    /// to move can never miss a wakeup.
    sleep_epoch: Mutex<u64>,
    /// Parked workers wait here; [`Pool::scope`] joiners wait on
    /// [`ScopeState::done`] instead.
    wake: Condvar,
    /// Set once by `Drop`; workers drain every queue, then exit.
    shutdown: AtomicBool,
    /// Panics swallowed by detached [`Pool::spawn`] tasks (scoped tasks
    /// re-raise on the submitter instead; see [`Pool::detached_panics`]).
    detached_panics: AtomicUsize,
}

thread_local! {
    /// `(Arc::as_ptr of the owning pool's Shared, worker index)` for pool
    /// worker threads; lets `push` route nested spawns to the running
    /// worker's own deque and lets `scope` joiners help-run tasks instead
    /// of deadlocking when called from inside the pool.
    static WORKER: Cell<Option<(usize, usize)>> = const { Cell::new(None) };
}

fn current_worker(shared: &Arc<Shared>) -> Option<usize> {
    WORKER.with(|w| match w.get() {
        Some((pool, idx)) if pool == Arc::as_ptr(shared) as usize => Some(idx),
        _ => None,
    })
}

/// Pop one runnable task, preferring (own deque back) → injector front →
/// steal a sibling's front. `me` is the calling worker's index, if any.
fn find_task(shared: &Shared, me: Option<usize>) -> Option<Task> {
    if let Some(i) = me {
        if let Some(t) = shared.worker_queues[i]
            .lock()
            .expect("queue lock")
            .pop_back()
        {
            return Some(t);
        }
    }
    if let Some(t) = shared.injector.lock().expect("injector lock").pop_front() {
        return Some(t);
    }
    let n = shared.worker_queues.len();
    let start = me.map_or(0, |i| i + 1);
    for k in 0..n {
        let j = (start + k) % n;
        if Some(j) == me {
            continue;
        }
        if let Some(t) = shared.worker_queues[j]
            .lock()
            .expect("queue lock")
            .pop_front()
        {
            return Some(t);
        }
    }
    None
}

fn worker_loop(shared: Arc<Shared>, index: usize) {
    WORKER.with(|w| w.set(Some((Arc::as_ptr(&shared) as usize, index))));
    loop {
        if let Some(task) = find_task(&shared, Some(index)) {
            task();
            continue;
        }
        // Park. Re-check the queues *under the epoch lock*: any push that
        // raced past the scan above bumped the epoch under this same lock,
        // so either the re-scan sees the task or `wait_while` returns
        // immediately on the moved epoch.
        let mut epoch = shared.sleep_epoch.lock().expect("sleep lock");
        if let Some(task) = find_task(&shared, Some(index)) {
            drop(epoch);
            task();
            continue;
        }
        if shared.shutdown.load(Ordering::Acquire) {
            // Queues verified empty above: graceful exit.
            return;
        }
        let seen = *epoch;
        epoch = shared
            .wake
            .wait_while(epoch, |e| {
                *e == seen && !shared.shutdown.load(Ordering::Acquire)
            })
            .expect("sleep lock");
        drop(epoch);
    }
}

/// Outstanding-task accounting for one [`Pool::scope`] invocation.
struct ScopeState {
    /// Tasks spawned and not yet finished.
    pending: Mutex<usize>,
    /// Signalled when `pending` reaches zero.
    done: Condvar,
    /// First panic payload raised by a task of this scope; re-raised on
    /// the submitting thread when the scope joins.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

/// Spawn handle passed to the closure of [`Pool::scope`]; tasks may borrow
/// anything that outlives `'env`.
pub struct Scope<'pool, 'env> {
    pool: &'pool Pool,
    state: Arc<ScopeState>,
    /// Make `'env` invariant so a scope cannot be smuggled into a wider
    /// lifetime (same trick as `std::thread::Scope`).
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'env> Scope<'_, 'env> {
    /// Queue `f` onto the pool. The task may borrow from the environment
    /// of the enclosing [`Pool::scope`] call; the scope joins all tasks
    /// before it returns, and re-raises the first task panic (if any) on
    /// the submitting thread.
    pub fn spawn<F: FnOnce() + Send + 'env>(&self, f: F) {
        *self.state.pending.lock().expect("pending lock") += 1;
        let state = Arc::clone(&self.state);
        let task: Box<dyn FnOnce() + Send + 'env> = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                state
                    .panic
                    .lock()
                    .expect("panic lock")
                    .get_or_insert(payload);
            }
            let mut pending = state.pending.lock().expect("pending lock");
            *pending -= 1;
            if *pending == 0 {
                state.done.notify_all();
            }
        });
        // SAFETY: the task runs before `Pool::scope` returns (the scope
        // unconditionally joins, even when the scope body panics), so every
        // `'env` borrow it carries is live for the task's whole execution.
        // The transmute only erases that lifetime; trait object layout is
        // unchanged.
        let task: Task = unsafe { std::mem::transmute(task) };
        self.pool.push(task);
    }
}

/// A fixed-size work-stealing thread pool. See the module docs for the
/// design; see [`global`] for the shared process-wide instance.
pub struct Pool {
    shared: Arc<Shared>,
    handles: Vec<JoinHandle<()>>,
}

impl Pool {
    /// Spawn a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            injector: Mutex::new(VecDeque::new()),
            worker_queues: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            sleep_epoch: Mutex::new(0),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            detached_panics: AtomicUsize::new(0),
        });
        let handles = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("omx-pool-{i}"))
                    .spawn(move || worker_loop(shared, i))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, handles }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.shared.worker_queues.len()
    }

    /// Queue a task and wake a parked worker.
    fn push(&self, task: Task) {
        match current_worker(&self.shared) {
            Some(i) => self.shared.worker_queues[i]
                .lock()
                .expect("queue lock")
                .push_back(task),
            None => self
                .shared
                .injector
                .lock()
                .expect("injector lock")
                .push_back(task),
        }
        *self.shared.sleep_epoch.lock().expect("sleep lock") += 1;
        self.shared.wake.notify_one();
    }

    /// Fire-and-forget a `'static` task. A panic inside it is swallowed
    /// and counted (see [`Pool::detached_panics`]) rather than crossing
    /// threads — use [`Pool::scope`] when the submitter must observe
    /// failure. Tasks still queued when the pool is dropped are run to
    /// completion by the shutdown path: submission guarantees execution.
    pub fn spawn<F: FnOnce() + Send + 'static>(&self, f: F) {
        let shared = Arc::clone(&self.shared);
        self.push(Box::new(move || {
            if catch_unwind(AssertUnwindSafe(f)).is_err() {
                shared.detached_panics.fetch_add(1, Ordering::Relaxed);
            }
        }));
    }

    /// Panics swallowed by detached [`Pool::spawn`] tasks so far.
    pub fn detached_panics(&self) -> usize {
        self.shared.detached_panics.load(Ordering::Relaxed)
    }

    /// Structured parallelism over borrowed data: run `f` with a
    /// [`Scope`], join every task it spawned, then return `f`'s result.
    /// Panics — from the scope body or from any task — propagate to the
    /// caller (body panic first, then the first task panic).
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'_, 'env>) -> R,
    {
        let scope = Scope {
            pool: self,
            state: Arc::new(ScopeState {
                pending: Mutex::new(0),
                done: Condvar::new(),
                panic: Mutex::new(None),
            }),
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always join — the `'env` borrows inside queued tasks must not
        // outlive this frame, so the barrier holds even under panic.
        self.join_scope(&scope.state);
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(r) => {
                if let Some(payload) = scope.state.panic.lock().expect("panic lock").take() {
                    resume_unwind(payload);
                }
                r
            }
        }
    }

    /// Wait until every task of `state` has finished. A worker thread of
    /// this pool helps execute queued tasks while it waits (nested scopes
    /// cannot deadlock); an external thread parks on the scope condvar.
    fn join_scope(&self, state: &ScopeState) {
        if let Some(me) = current_worker(&self.shared) {
            loop {
                if *state.pending.lock().expect("pending lock") == 0 {
                    return;
                }
                match find_task(&self.shared, Some(me)) {
                    Some(task) => task(),
                    None => std::thread::yield_now(),
                }
            }
        }
        let mut pending = state.pending.lock().expect("pending lock");
        while *pending != 0 {
            pending = state.done.wait(pending).expect("pending lock");
        }
    }

    /// Ordered fork-join map: apply `f` to every input on the pool and
    /// return the outputs **in input order**. Execution order is
    /// unspecified; commit order is the input index, so the result is
    /// identical to `inputs.into_iter().map(f).collect()` — the
    /// byte-identity contract campaign reports are built on. A panic in
    /// any invocation propagates after all other tasks finish.
    pub fn map<I, O, F>(&self, inputs: Vec<I>, f: F) -> Vec<O>
    where
        I: Send,
        O: Send,
        F: Fn(I) -> O + Sync,
    {
        let slots: Vec<Mutex<Option<O>>> = inputs.iter().map(|_| Mutex::new(None)).collect();
        let f = &f;
        let slots_ref = &slots;
        self.scope(|s| {
            for (i, input) in inputs.into_iter().enumerate() {
                s.spawn(move || {
                    let out = f(input);
                    *slots_ref[i].lock().expect("slot lock") = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("slot lock")
                    .expect("scope joined every task")
            })
            .collect()
    }
}

impl Drop for Pool {
    /// Graceful shutdown: every task already submitted still runs. Workers
    /// drain all queues before exiting; any straggler pushed during the
    /// race is executed here on the dropping thread.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        *self.shared.sleep_epoch.lock().expect("sleep lock") += 1;
        self.shared.wake.notify_all();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
        while let Some(task) = find_task(&self.shared, None) {
            task();
        }
    }
}

// ---------------------------------------------------------------------------
// Process-wide worker-count policy and the shared pool
// ---------------------------------------------------------------------------

/// Worker count pinned by [`set_jobs`] (0 = unset → fall through to the
/// `OMX_JOBS` environment variable, then `available_parallelism`).
static SET_JOBS: AtomicUsize = AtomicUsize::new(0);

static GLOBAL: OnceLock<Pool> = OnceLock::new();

thread_local! {
    /// Thread-local jobs override installed by [`with_jobs`].
    static JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Pin the process-wide worker count (the CLI `--jobs N` flag). Takes
/// precedence over `OMX_JOBS` and auto-detection; call it before the first
/// [`global`] use — the shared pool is sized once, at first use, and a
/// later `set_jobs` only affects the serial/parallel routing decision of
/// [`effective_jobs`], not the existing pool's width. `0` resets to auto.
pub fn set_jobs(n: usize) {
    SET_JOBS.store(n, Ordering::SeqCst);
}

/// The process-wide jobs setting: [`set_jobs`] if set, else a positive
/// integer `OMX_JOBS` environment variable, else
/// `std::thread::available_parallelism` (1 if unknown).
pub fn configured_jobs() -> usize {
    let pinned = SET_JOBS.load(Ordering::SeqCst);
    if pinned > 0 {
        return pinned;
    }
    static WARNED: AtomicBool = AtomicBool::new(false);
    if let Some(n) = jobs_env("OMX_JOBS", &WARNED) {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The jobs value call sites should honour *right now*: the innermost
/// [`with_jobs`] override on this thread, else [`configured_jobs`]. A
/// value of 1 means "take the serial path" — run inline, no pool.
pub fn effective_jobs() -> usize {
    JOBS_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured_jobs)
}

/// Run `f` with [`effective_jobs`] forced to `n` on this thread (restored
/// on exit, panic included). `with_jobs(1, …)` forces the serial path —
/// the `campaign/*_serial` baseline benches are measured this way. Values
/// above 1 route work to the shared [`global`] pool, whose width was fixed
/// at first use; the override does not resize it.
pub fn with_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            JOBS_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(JOBS_OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

/// The shared process-wide pool, created on first use with
/// [`configured_jobs`] workers. Campaign executors route through it when
/// [`effective_jobs`] is above 1.
pub fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::new(configured_jobs()))
}

// ---------------------------------------------------------------------------
// Intra-simulation worker-count policy (`--sim-jobs`)
// ---------------------------------------------------------------------------
//
// Orthogonal to the campaign-level `--jobs` policy above: `--jobs` says how
// many *whole simulations* run concurrently on the shared pool, `--sim-jobs`
// says how many partition workers one simulation's conservative parallel DES
// engine (see `omx_sim::par`) may use. The default is 1 — the serial engine —
// because intra-sim parallelism is opt-in: it spawns dedicated scoped threads
// per run and only pays off for large worlds.

/// Sim-worker count pinned by [`set_sim_jobs`] (0 = unset → fall through to
/// the `OMX_SIM_JOBS` environment variable, then the serial default of 1).
static SET_SIM_JOBS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Thread-local sim-jobs override installed by [`with_sim_jobs`].
    static SIM_JOBS_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Pin the process-wide sim-worker count (the CLI `--sim-jobs N` flag).
/// Takes precedence over `OMX_SIM_JOBS`. `0` resets to unset.
pub fn set_sim_jobs(n: usize) {
    SET_SIM_JOBS.store(n, Ordering::SeqCst);
}

/// The process-wide sim-jobs setting: [`set_sim_jobs`] if set, else a
/// positive-integer `OMX_SIM_JOBS` environment variable (invalid values are
/// rejected with a warning, like `OMX_JOBS`), else 1 (serial engine).
pub fn configured_sim_jobs() -> usize {
    let pinned = SET_SIM_JOBS.load(Ordering::SeqCst);
    if pinned > 0 {
        return pinned;
    }
    static WARNED: AtomicBool = AtomicBool::new(false);
    jobs_env("OMX_SIM_JOBS", &WARNED).unwrap_or(1)
}

/// The sim-jobs value the engine should honour *right now*: the innermost
/// [`with_sim_jobs`] override on this thread, else [`configured_sim_jobs`].
/// 1 means "run the serial engine".
pub fn effective_sim_jobs() -> usize {
    SIM_JOBS_OVERRIDE
        .with(|o| o.get())
        .unwrap_or_else(configured_sim_jobs)
}

/// Run `f` with [`effective_sim_jobs`] forced to `n` on this thread
/// (restored on exit, panic included). Note the override is thread-local:
/// it reaches simulations run *on the calling thread*, not cells dispatched
/// to [`global`] pool workers — use [`set_sim_jobs`] (or the env var) to
/// parallelize campaign cells executed via [`Pool::map`].
pub fn with_sim_jobs<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<usize>);
    impl Drop for Restore {
        fn drop(&mut self) {
            SIM_JOBS_OVERRIDE.with(|o| o.set(self.0));
        }
    }
    let _restore = Restore(SIM_JOBS_OVERRIDE.with(|o| o.replace(Some(n.max(1)))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_commits_in_input_order() {
        let pool = Pool::new(4);
        // Uneven task durations: late inputs finish first, commit order
        // must still be input order.
        let out = pool.map((0..64u64).collect(), |i| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            i * 3
        });
        assert_eq!(out, (0..64).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn map_equals_serial_map_bytewise() {
        let pool = Pool::new(3);
        let serial: Vec<String> = (0..40).map(|i| format!("cell-{i:03}")).collect();
        let parallel = pool.map((0..40).collect(), |i: i32| format!("cell-{i:03}"));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn scope_tasks_borrow_the_environment() {
        let pool = Pool::new(2);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        pool.scope(|s| {
            for chunk in data.chunks(2) {
                let sum = &sum;
                s.spawn(move || {
                    sum.fetch_add(chunk.iter().sum::<u64>(), Ordering::Relaxed);
                });
            }
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn task_panic_propagates_to_submitter() {
        let pool = Pool::new(2);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|s| {
                s.spawn(|| panic!("cell exploded"));
                s.spawn(|| ()); // sibling task still joins
            });
        }));
        let payload = caught.expect_err("panic must cross back to the submitter");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "cell exploded");
        // The pool survives the propagated panic and keeps working.
        assert_eq!(pool.map(vec![21u32], |x| x * 2), vec![42]);
    }

    #[test]
    fn map_panic_propagates_and_names_the_cell() {
        let pool = Pool::new(4);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            pool.map((0..16u32).collect(), |i| {
                assert!(i != 11, "bad cell {i}");
                i
            })
        }));
        let payload = caught.expect_err("assert inside map must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("bad cell 11"), "got: {msg}");
    }

    #[test]
    fn jobs_policy_resolution_order() {
        // Thread-local override wins over everything and restores on exit.
        let before = configured_jobs();
        assert!(before >= 1);
        let inside = with_jobs(3, effective_jobs);
        assert_eq!(inside, 3);
        assert_eq!(effective_jobs(), configured_jobs());
        // Overrides nest and clamp to 1.
        let nested = with_jobs(5, || with_jobs(0, effective_jobs));
        assert_eq!(nested, 1);
    }

    #[test]
    fn jobs_value_parsing_rejects_malformed_and_zero() {
        assert_eq!(parse_jobs_value("4"), Some(4));
        assert_eq!(parse_jobs_value("  8 "), Some(8));
        assert_eq!(parse_jobs_value("0"), None);
        assert_eq!(parse_jobs_value("-2"), None);
        assert_eq!(parse_jobs_value("abc"), None);
        assert_eq!(parse_jobs_value(""), None);
        assert_eq!(parse_jobs_value("2x"), None);
    }

    #[test]
    fn invalid_sim_jobs_env_warns_and_falls_back_to_serial() {
        // `OMX_SIM_JOBS` is read only by this policy family, so mutating it
        // here cannot race the `OMX_JOBS` resolution tests.
        std::env::set_var("OMX_SIM_JOBS", "abc");
        assert_eq!(configured_sim_jobs(), 1, "malformed env → serial default");
        std::env::set_var("OMX_SIM_JOBS", "0");
        assert_eq!(configured_sim_jobs(), 1, "zero env → serial default");
        std::env::set_var("OMX_SIM_JOBS", "3");
        assert_eq!(configured_sim_jobs(), 3);
        std::env::remove_var("OMX_SIM_JOBS");
        assert_eq!(configured_sim_jobs(), 1);
        // A pinned value (the CLI flag) beats the environment.
        std::env::set_var("OMX_SIM_JOBS", "5");
        set_sim_jobs(2);
        assert_eq!(configured_sim_jobs(), 2);
        set_sim_jobs(0);
        assert_eq!(configured_sim_jobs(), 5);
        std::env::remove_var("OMX_SIM_JOBS");
    }

    #[test]
    fn sim_jobs_override_nests_and_restores() {
        assert_eq!(with_sim_jobs(4, effective_sim_jobs), 4);
        let nested = with_sim_jobs(6, || with_sim_jobs(0, effective_sim_jobs));
        assert_eq!(nested, 1, "override clamps to at least 1");
        // The thread-local override is fully unwound (avoid reading the
        // env-backed global here — a sibling test may be mutating it).
        assert!(SIM_JOBS_OVERRIDE.with(|o| o.get()).is_none());
    }

    #[test]
    fn detached_spawn_counts_panics_instead_of_crossing_threads() {
        let pool = Pool::new(1);
        pool.spawn(|| panic!("detached"));
        // Synchronise: a scope joins after the detached task drained.
        pool.scope(|s| s.spawn(|| ()));
        assert_eq!(pool.detached_panics(), 1);
    }
}
