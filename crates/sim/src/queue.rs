//! Timestamped event queue with stable ordering and cancellation.
//!
//! The queue orders events by `(time, sequence)`: events scheduled for the
//! same instant pop in the order they were pushed, which keeps the whole
//! simulation deterministic regardless of heap internals.
//!
//! Cancellation uses lazy deletion: [`EventQueue::cancel`] removes the token
//! from the pending set and the heap entry is discarded when it reaches the
//! top. This is O(1) per cancellation and keeps pop at amortised O(log n),
//! which matters because coalescing timers are re-armed (cancel + push) on
//! almost every received packet.

use crate::time::Time;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};

/// Handle to a scheduled event, usable to cancel it before it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken(u64);

struct Entry<E> {
    time: Time,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A deterministic priority queue of timestamped events.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Sequence numbers of events that are scheduled and not cancelled.
    pending: HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pending: HashSet::new(),
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pending: HashSet::with_capacity(cap),
        }
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.pending.len()
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    /// Schedule `event` at absolute time `time`; returns a cancellation token.
    pub fn push(&mut self, time: Time, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry { time, seq, event });
        self.pending.insert(seq);
        EventToken(seq)
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now dead),
    /// `false` if it had already fired or been cancelled.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        self.pending.remove(&token.0)
    }

    /// Timestamp of the next live event, if any.
    pub fn peek_time(&mut self) -> Option<Time> {
        self.skim_cancelled();
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        self.skim_cancelled();
        self.heap.pop().map(|e| {
            self.pending.remove(&e.seq);
            (e.time, e.event)
        })
    }

    /// Drop cancelled entries sitting at the top of the heap.
    fn skim_cancelled(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.pending.contains(&top.seq) {
                break;
            }
            self.heap.pop();
        }
    }

    /// Remove all events.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.pending.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), "dead");
        q.push(t(20), "live");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "live")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), ());
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(tok));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), "dead");
        q.push(t(25), "live");
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(t(25)));
    }

    #[test]
    fn len_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        let tok = q.push(t(2), 2);
        q.cancel(tok);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_push_pop_cancel_is_consistent() {
        let mut q = EventQueue::new();
        let mut toks = Vec::new();
        for i in 0..50u64 {
            toks.push(q.push(t(i * 10), i));
        }
        // Cancel every third event.
        for (i, tok) in toks.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*tok));
            }
        }
        let mut seen = Vec::new();
        while let Some((_, v)) = q.pop() {
            seen.push(v);
        }
        let expect: Vec<u64> = (0..50).filter(|i| i % 3 != 0).collect();
        assert_eq!(seen, expect);
    }
}
