//! Timestamped event queue with stable ordering and true cancellation.
//!
//! The queue orders events by `(time, sequence)`: events scheduled for the
//! same instant pop in the order they were pushed, which keeps the whole
//! simulation deterministic regardless of the internal layout.
//!
//! # Design
//!
//! The hot operations of the simulation are *push*, *pop* and — because
//! coalescing timers are re-armed (cancel + push) on almost every received
//! packet — *cancel*. The original implementation paired a `BinaryHeap` with
//! a `HashSet` of live sequence numbers (lazy deletion): every operation paid
//! a SipHash lookup and cancelled entries lingered in the heap until they
//! surfaced. This version removes the hashing and the dead entries entirely:
//!
//! * **Slab + generation tokens.** Every scheduled event owns a slot in a
//!   slab (`Vec<Slot>` + intrusive free list). An [`EventToken`] is a
//!   `(slot, generation)` pair: resolving a token is one bounds check and one
//!   generation compare, O(1), no hashing. Freed slots bump their generation
//!   so stale tokens (fired or already-cancelled events) are rejected.
//! * **Index-tracked 4-ary heap.** The primary structure is a 4-ary min-heap
//!   of `(time, seq, slot)` entries. Each slot records its current heap
//!   position, so cancellation is a true O(log n) removal (swap with the
//!   last entry, sift) — no tombstones, `len` is exact, and `peek_time` is
//!   `&self`. The 4-ary layout halves the tree depth versus a binary heap
//!   and keeps sift-down comparisons within one cache line.
//! * **Timer-wheel fast path.** Short-horizon events are routed into a
//!   two-level hierarchical timer wheel (64 buckets per level, 2^10 ns and
//!   2^16 ns ticks ≈ 65 µs and 4.2 ms of span). Wheel insert and cancel are
//!   O(1) (bucket push / swap-remove), which makes the per-packet
//!   re-arm pattern of the coalescing strategies constant-time: a timer that
//!   is cancelled before its bucket is reached never touches the heap at
//!   all. Buckets are unordered; when simulated time approaches a bucket it
//!   is *promoted* wholesale into the heap, where exact `(time, seq)` order
//!   is restored — each event is promoted at most once, so the amortised
//!   cost matches a plain heap while cancellation stays O(1).
//!
//! The structures are hybridised by one invariant, re-established after
//! every mutation: **if the wheel holds any event, the heap is non-empty and
//! its root is `(time, seq)`-minimal among all queued events.** Pushes that
//! would precede the heap root go straight to the heap; pops and heap
//! cancellations promote wheel buckets until the invariant holds again.
//! `peek_time`/`pop` therefore read the global minimum directly off the heap
//! root and dispatch order is byte-identical to a single ordered queue.
//!
//! Steady-state operation performs no heap allocation: slots, heap entries
//! and bucket vectors are all recycled.

use crate::time::Time;

/// Handle to a scheduled event, usable to cancel it before it fires.
///
/// Tokens are generation-stamped: a token for an event that has already
/// fired or been cancelled is rejected by [`EventQueue::cancel`], even if
/// its slab slot has been reused by a later event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventToken {
    slot: u32,
    gen: u32,
}

impl EventToken {
    /// Assemble a token from its raw slab coordinates. Reserved for sibling
    /// queue implementations (the partition-local [`crate::par::ParQueue`])
    /// that hand out tokens with the same cancel-safety contract.
    #[inline]
    pub(crate) fn from_parts(slot: u32, gen: u32) -> Self {
        EventToken { slot, gen }
    }

    /// The raw `(slot, gen)` coordinates, inverse of [`EventToken::from_parts`].
    #[inline]
    pub(crate) fn parts(self) -> (u32, u32) {
        (self.slot, self.gen)
    }
}

/// Where a live event currently resides.
#[derive(Debug, Clone, Copy)]
enum Loc {
    /// Slot is on the free list; `next` is the next free slot (NIL-terminated).
    Free { next: u32 },
    /// Event is in the heap at this position.
    Heap { pos: u32 },
    /// Event is in wheel `level`, bucket `bucket`, at `pos` in the bucket.
    Wheel { level: u8, bucket: u8, pos: u32 },
}

const NIL: u32 = u32::MAX;

struct Slot<E> {
    gen: u32,
    loc: Loc,
    time: Time,
    seq: u64,
    event: Option<E>,
}

/// Heap entries carry the ordering key inline so sifts never chase the slab.
#[derive(Debug, Clone, Copy)]
struct HeapEntry {
    time: Time,
    seq: u64,
    slot: u32,
}

impl HeapEntry {
    #[inline]
    fn key(&self) -> (Time, u64) {
        (self.time, self.seq)
    }
}

/// Wheel geometry: two levels of 64 buckets. Level 0 ticks are 2^10 ns
/// (~1 µs, spanning ~65 µs); level 1 ticks are 2^16 ns (~65 µs, spanning
/// ~4.2 ms). The NIC coalescing timeout (75 µs default) and the driver
/// retransmit timers land in level 1; NAPI-scale re-polls land in level 0.
/// Anything further out overflows to the heap, which is exact at any range.
const LEVELS: usize = 2;
const LEVEL_BITS: [u32; LEVELS] = [10, 16];
const WHEEL_SLOTS: usize = 64;
const SLOT_MASK: u64 = WHEEL_SLOTS as u64 - 1;

struct Level {
    /// Unordered slot indices per bucket; bucket index = tick & SLOT_MASK.
    buckets: Vec<Vec<u32>>,
    /// Bit b set ⇔ bucket b is non-empty.
    occupied: u64,
    /// First tick this level may still hold; all resident ticks lie in
    /// `[next_tick, next_tick + WHEEL_SLOTS)`.
    next_tick: u64,
}

impl Level {
    fn new() -> Self {
        Level {
            buckets: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            occupied: 0,
            next_tick: 0,
        }
    }
}

/// A deterministic priority queue of timestamped events.
pub struct EventQueue<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    heap: Vec<HeapEntry>,
    levels: [Level; LEVELS],
    next_seq: u64,
    len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            slots: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
            levels: [Level::new(), Level::new()],
            next_seq: 0,
            len: 0,
        }
    }

    /// Create an empty queue with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        let mut q = Self::new();
        q.slots.reserve(cap);
        q.heap.reserve(cap);
        q
    }

    /// Number of live (non-cancelled) events still queued.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no live events remain.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Schedule `event` at absolute time `time`; returns a cancellation token.
    ///
    /// `#[inline]`: push/cancel are the two halves of the coalescing-timer
    /// re-arm pattern and are called from other crates (the engine, the
    /// partition queues); without the hint the call stays an opaque
    /// cross-crate call and the wheel fast path cannot fold into the
    /// caller's loop.
    #[inline]
    pub fn push(&mut self, time: Time, event: E) -> EventToken {
        let seq = self.next_seq;
        self.next_seq += 1;
        let slot = self.alloc_slot(time, seq, event);
        let gen = self.slots[slot as usize].gen;
        self.len += 1;

        // Wheel fast path — only when the heap root stays the global
        // minimum (the new event's seq is the largest, so ties on time keep
        // the root minimal) and the event's tick is within a level's window.
        if self.heap.first().is_some_and(|root| root.time <= time) {
            let t = time.as_nanos();
            for (l, level) in self.levels.iter_mut().enumerate() {
                let tick = t >> LEVEL_BITS[l];
                if tick >= level.next_tick && tick - level.next_tick < WHEEL_SLOTS as u64 {
                    let b = (tick & SLOT_MASK) as usize;
                    let pos = level.buckets[b].len() as u32;
                    level.buckets[b].push(slot);
                    level.occupied |= 1 << b;
                    self.slots[slot as usize].loc = Loc::Wheel {
                        level: l as u8,
                        bucket: b as u8,
                        pos,
                    };
                    return EventToken { slot, gen };
                }
            }
        }
        self.heap_insert(slot);
        EventToken { slot, gen }
    }

    /// Cancel a previously scheduled event.
    ///
    /// Returns `true` if the event was still pending (and is now removed),
    /// `false` if it had already fired or been cancelled. Wheel-resident
    /// events (short-horizon timers) cancel in O(1); heap-resident events
    /// are removed in O(log n) — no tombstones remain either way.
    #[inline]
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let Some(slot) = self.slots.get(token.slot as usize) else {
            return false;
        };
        if slot.gen != token.gen {
            return false;
        }
        match slot.loc {
            Loc::Free { .. } => false,
            Loc::Heap { pos } => {
                self.heap_remove(pos as usize);
                self.free_slot(token.slot);
                self.len -= 1;
                // Removing the root can expose wheel events as the new
                // minimum; restore the hybrid invariant.
                self.restore();
                true
            }
            Loc::Wheel { level, bucket, pos } => {
                self.wheel_remove(level as usize, bucket as usize, pos as usize);
                self.free_slot(token.slot);
                self.len -= 1;
                true
            }
        }
    }

    /// Timestamp of the next live event, if any.
    ///
    /// O(1) and `&self`: the hybrid invariant keeps the global minimum at
    /// the heap root whenever the queue is non-empty.
    #[inline]
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|e| e.time)
    }

    /// Pop the earliest live event.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        if self.len == 0 {
            return None;
        }
        debug_assert!(!self.heap.is_empty(), "hybrid invariant violated");
        let root = self.heap_remove(0);
        let event = self.slots[root.slot as usize]
            .event
            .take()
            .expect("live heap entry has an event");
        self.free_slot(root.slot);
        self.len -= 1;
        // Every remaining event is at `root.time` or later, so wheel ticks
        // strictly before it are empty forever: advance the level cursors so
        // the push windows track simulated time.
        let t = root.time.as_nanos();
        for (l, level) in self.levels.iter_mut().enumerate() {
            let tick = t >> LEVEL_BITS[l];
            if tick > level.next_tick {
                level.next_tick = tick;
            }
        }
        self.restore();
        Some((root.time, event))
    }

    /// Remove all events. Tokens issued before the clear are invalidated.
    pub fn clear(&mut self) {
        for i in 0..self.slots.len() {
            if !matches!(self.slots[i].loc, Loc::Free { .. }) {
                self.slots[i].event = None;
                self.free_slot(i as u32);
            }
        }
        self.heap.clear();
        for level in &mut self.levels {
            for b in &mut level.buckets {
                b.clear();
            }
            level.occupied = 0;
            level.next_tick = 0;
        }
        self.len = 0;
    }

    // -- slab ----------------------------------------------------------------

    fn alloc_slot(&mut self, time: Time, seq: u64, event: E) -> u32 {
        if self.free_head != NIL {
            let idx = self.free_head;
            let slot = &mut self.slots[idx as usize];
            let Loc::Free { next } = slot.loc else {
                unreachable!("free list head is free");
            };
            self.free_head = next;
            slot.time = time;
            slot.seq = seq;
            slot.event = Some(event);
            idx
        } else {
            let idx = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                loc: Loc::Free { next: NIL },
                time,
                seq,
                event: Some(event),
            });
            idx
        }
    }

    fn free_slot(&mut self, idx: u32) {
        let slot = &mut self.slots[idx as usize];
        debug_assert!(slot.event.is_none() || slot.event.is_some()); // slot valid
        slot.event = None;
        slot.gen = slot.gen.wrapping_add(1);
        slot.loc = Loc::Free {
            next: self.free_head,
        };
        self.free_head = idx;
    }

    // -- wheel ---------------------------------------------------------------

    fn wheel_remove(&mut self, level: usize, bucket: usize, pos: usize) {
        let b = &mut self.levels[level].buckets[bucket];
        b.swap_remove(pos);
        let moved = b.get(pos).copied();
        if b.is_empty() {
            self.levels[level].occupied &= !(1u64 << bucket);
        }
        if let Some(moved) = moved {
            self.slots[moved as usize].loc = Loc::Wheel {
                level: level as u8,
                bucket: bucket as u8,
                pos: pos as u32,
            };
        }
    }

    /// Earliest non-empty wheel bucket across levels, as `(level, tick,
    /// start_ns)`; O(1) via the occupancy bitmaps.
    fn earliest_bucket(&self) -> Option<(usize, u64, u64)> {
        let mut best: Option<(usize, u64, u64)> = None;
        for (l, level) in self.levels.iter().enumerate() {
            if level.occupied == 0 {
                continue;
            }
            let rot = level
                .occupied
                .rotate_right((level.next_tick & SLOT_MASK) as u32);
            let tick = level.next_tick + u64::from(rot.trailing_zeros());
            let start = tick.saturating_mul(1u64 << LEVEL_BITS[l]);
            match best {
                Some((_, _, s)) if start >= s => {}
                _ => best = Some((l, tick, start)),
            }
        }
        best
    }

    /// Re-establish the hybrid invariant: promote wheel buckets into the
    /// heap until the heap root precedes every wheel-resident event (or the
    /// wheel is empty). Each event is promoted at most once over its
    /// lifetime, so the cost amortises to one heap insert per event.
    fn restore(&mut self) {
        while let Some((l, tick, start)) = self.earliest_bucket() {
            if self
                .heap
                .first()
                .is_some_and(|root| root.time.as_nanos() < start)
            {
                break;
            }
            let b = (tick & SLOT_MASK) as usize;
            let mut bucket = std::mem::take(&mut self.levels[l].buckets[b]);
            for slot in bucket.drain(..) {
                self.heap_insert(slot);
            }
            self.levels[l].buckets[b] = bucket; // keep the capacity
            self.levels[l].occupied &= !(1u64 << b);
            self.levels[l].next_tick = tick + 1;
        }
    }

    // -- 4-ary heap ----------------------------------------------------------

    fn heap_insert(&mut self, slot: u32) {
        let s = &self.slots[slot as usize];
        let entry = HeapEntry {
            time: s.time,
            seq: s.seq,
            slot,
        };
        let pos = self.heap.len();
        self.heap.push(entry);
        self.sift_up(pos);
    }

    /// Remove and return the entry at `pos`, restoring the heap property.
    fn heap_remove(&mut self, pos: usize) -> HeapEntry {
        let entry = self.heap[pos];
        let last = self.heap.pop().expect("heap_remove on non-empty heap");
        if pos < self.heap.len() {
            self.heap[pos] = last;
            if pos > 0 && last.key() < self.heap[(pos - 1) / 4].key() {
                self.sift_up(pos);
            } else {
                self.sift_down(pos);
            }
        }
        entry
    }

    fn sift_up(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        while pos > 0 {
            let parent = (pos - 1) / 4;
            let p = self.heap[parent];
            if p.key() <= key {
                break;
            }
            self.heap[pos] = p;
            self.slots[p.slot as usize].loc = Loc::Heap { pos: pos as u32 };
            pos = parent;
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].loc = Loc::Heap { pos: pos as u32 };
    }

    fn sift_down(&mut self, mut pos: usize) {
        let entry = self.heap[pos];
        let key = entry.key();
        let len = self.heap.len();
        loop {
            let first = pos * 4 + 1;
            if first >= len {
                break;
            }
            let last = (first + 4).min(len);
            let mut best = first;
            let mut best_key = self.heap[first].key();
            for c in first + 1..last {
                let k = self.heap[c].key();
                if k < best_key {
                    best = c;
                    best_key = k;
                }
            }
            if key <= best_key {
                break;
            }
            let b = self.heap[best];
            self.heap[pos] = b;
            self.slots[b.slot as usize].loc = Loc::Heap { pos: pos as u32 };
            pos = best;
        }
        self.heap[pos] = entry;
        self.slots[entry.slot as usize].loc = Loc::Heap { pos: pos as u32 };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> Time {
        Time::from_nanos(ns)
    }

    impl<E> EventQueue<E> {
        /// Events currently resident in the wheel (tests only).
        fn wheel_len(&self) -> usize {
            self.levels
                .iter()
                .flat_map(|l| l.buckets.iter())
                .map(Vec::len)
                .sum()
        }

        /// Walk every internal structure and check consistency (tests only).
        fn check_invariants(&self) {
            let heap_live = self.heap.len();
            let wheel_live = self.wheel_len();
            assert_eq!(self.len, heap_live + wheel_live, "len mismatch");
            if wheel_live > 0 {
                let root = self.heap.first().expect("wheel non-empty needs heap root");
                for level in &self.levels {
                    for bucket in &level.buckets {
                        for &s in bucket {
                            let slot = &self.slots[s as usize];
                            assert!(
                                root.key() <= (slot.time, slot.seq),
                                "wheel event precedes heap root"
                            );
                        }
                    }
                }
            }
            // Heap property + back-pointers.
            for (i, e) in self.heap.iter().enumerate() {
                if i > 0 {
                    let p = self.heap[(i - 1) / 4];
                    assert!(p.key() <= e.key(), "heap property violated at {i}");
                }
                match self.slots[e.slot as usize].loc {
                    Loc::Heap { pos } => assert_eq!(pos as usize, i, "stale heap pos"),
                    other => panic!("heap entry slot has loc {other:?}"),
                }
            }
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_pop_fifo() {
        let mut q = EventQueue::new();
        for i in 0..100 {
            q.push(t(5), i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn cancel_removes_event() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), "dead");
        q.push(t(20), "live");
        assert!(q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(20), "live")));
        assert!(q.is_empty());
    }

    #[test]
    fn cancel_twice_is_false() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), ());
        assert!(q.cancel(tok));
        assert!(!q.cancel(tok));
    }

    #[test]
    fn cancel_after_fire_is_false() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), ());
        assert!(q.pop().is_some());
        assert!(!q.cancel(tok));
    }

    #[test]
    fn stale_token_rejected_after_slot_reuse() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), 1);
        assert!(q.pop().is_some());
        // The slot is recycled for a new event; the old token must not
        // cancel it.
        let tok2 = q.push(t(20), 2);
        assert!(!q.cancel(tok));
        assert_eq!(q.len(), 1);
        assert!(q.cancel(tok2));
    }

    #[test]
    fn peek_time_skips_cancelled() {
        let mut q = EventQueue::new();
        let tok = q.push(t(10), "dead");
        q.push(t(25), "live");
        q.cancel(tok);
        assert_eq!(q.peek_time(), Some(t(25)));
    }

    #[test]
    fn len_accounts_for_cancellation() {
        let mut q = EventQueue::new();
        let a = q.push(t(1), 1);
        q.push(t(2), 2);
        assert_eq!(q.len(), 2);
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn clear_empties_everything() {
        let mut q = EventQueue::new();
        q.push(t(1), 1);
        let tok = q.push(t(2), 2);
        q.cancel(tok);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
        assert_eq!(q.peek_time(), None);
    }

    #[test]
    fn tokens_from_before_clear_are_invalid() {
        let mut q = EventQueue::new();
        let tok = q.push(t(1), 1);
        q.clear();
        let tok2 = q.push(t(2), 2);
        assert!(!q.cancel(tok));
        assert!(q.cancel(tok2));
    }

    #[test]
    fn interleaved_push_pop_cancel_is_consistent() {
        let mut q = EventQueue::new();
        let mut toks = Vec::new();
        for i in 0..50u64 {
            toks.push(q.push(t(i * 10), i));
        }
        // Cancel every third event.
        for (i, tok) in toks.iter().enumerate() {
            if i % 3 == 0 {
                assert!(q.cancel(*tok));
            }
        }
        q.check_invariants();
        let mut seen = Vec::new();
        while let Some((_, v)) = q.pop() {
            seen.push(v);
        }
        let expect: Vec<u64> = (0..50).filter(|i| i % 3 != 0).collect();
        assert_eq!(seen, expect);
    }

    #[test]
    fn short_horizon_timers_use_the_wheel() {
        let mut q = EventQueue::new();
        // An imminent event pins the heap root …
        q.push(t(100), 0u64);
        // … so a coalescing-style timer 75 µs out lands in the wheel.
        let tok = q.push(t(75_000), 1u64);
        assert_eq!(q.wheel_len(), 1, "75us timer should be wheel-resident");
        // O(1) cancel straight out of the bucket.
        assert!(q.cancel(tok));
        assert_eq!(q.wheel_len(), 0);
        assert_eq!(q.pop(), Some((t(100), 0)));
        assert!(q.is_empty());
    }

    #[test]
    fn wheel_events_promote_in_exact_order() {
        let mut q = EventQueue::new();
        q.push(t(0), 0u64);
        // A mix of same-tick events pushed out of time order.
        q.push(t(2_000), 3u64);
        q.push(t(1_500), 2u64);
        q.push(t(1_500), 4u64); // same time as previous, later seq
        q.push(t(900), 1u64);
        assert!(q.wheel_len() > 0, "short-horizon events use the wheel");
        q.check_invariants();
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, v)| v)).collect();
        assert_eq!(order, vec![0, 1, 2, 4, 3]);
    }

    #[test]
    fn cancelling_heap_root_promotes_wheel() {
        let mut q = EventQueue::new();
        let root = q.push(t(10), 0u64);
        q.push(t(5_000), 1u64);
        q.push(t(70_000), 2u64);
        assert_eq!(q.wheel_len(), 2);
        // Cancelling the only heap entry must surface the wheel events.
        assert!(q.cancel(root));
        q.check_invariants();
        assert_eq!(q.peek_time(), Some(t(5_000)));
        assert_eq!(q.pop(), Some((t(5_000), 1)));
        assert_eq!(q.pop(), Some((t(70_000), 2)));
    }

    #[test]
    fn repeated_rearm_pattern_is_exact() {
        // The coalescer pattern: cancel + re-push a 75 µs timer on every
        // packet; only the final arming may fire.
        let mut q = EventQueue::new();
        let mut timer = None;
        let mut now = 0u64;
        for i in 0..1_000u64 {
            now = i * 1_200; // one packet every 1.2 µs
            q.push(t(now), ("pkt", i));
            if let Some(tok) = timer.take() {
                assert!(q.cancel(tok), "re-arm must find the previous timer");
            }
            timer = Some(q.push(t(now + 75_000), ("timer", i)));
            // Drain packets up to now (the engine keeps popping).
            while q.peek_time().is_some_and(|pt| pt.as_nanos() <= now) {
                q.pop();
            }
        }
        q.check_invariants();
        // Exactly the last timer remains.
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((t(now + 75_000), ("timer", 999))));
    }

    #[test]
    fn far_future_events_overflow_to_heap() {
        let mut q = EventQueue::new();
        q.push(t(0), 0u64);
        q.push(Time::from_secs(10), 1u64); // far beyond the wheel span
        q.push(Time::MAX, 2u64);
        assert_eq!(q.wheel_len(), 0);
        assert_eq!(q.pop(), Some((t(0), 0)));
        assert_eq!(q.pop(), Some((Time::from_secs(10), 1)));
        assert_eq!(q.pop(), Some((Time::MAX, 2)));
    }
}
