//! Simulated time.
//!
//! [`Time`] is an absolute instant measured in integer nanoseconds since the
//! start of the simulation; [`TimeDelta`] is a signed difference between two
//! instants. Integer nanoseconds keep the simulation exactly associative and
//! platform-independent (no floating-point drift), while still being fine
//! enough to express sub-100 ns cache effects and coarse enough that a u64
//! covers ~584 years of simulated time.

use core::fmt;
use core::ops::{Add, AddAssign, Sub, SubAssign};

/// An absolute simulated instant, in nanoseconds since simulation start.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(pub u64);

/// A signed duration between two [`Time`] instants, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct TimeDelta(pub i64);

impl Time {
    /// The simulation origin.
    pub const ZERO: Time = Time(0);
    /// The largest representable instant; used as an "infinitely far" timer.
    pub const MAX: Time = Time(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        Time(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        Time(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Time(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        Time(s * 1_000_000_000)
    }

    /// The raw nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// This instant expressed in (fractional) microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// This instant expressed in (fractional) milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// This instant expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating addition of a duration (negative deltas clamp at zero).
    #[inline]
    pub fn saturating_add(self, delta: TimeDelta) -> Time {
        if delta.0 >= 0 {
            Time(self.0.saturating_add(delta.0 as u64))
        } else {
            Time(self.0.saturating_sub(delta.0.unsigned_abs()))
        }
    }

    /// Elapsed time since `earlier`, saturating to zero if `earlier` is later.
    #[inline]
    pub fn saturating_since(self, earlier: Time) -> TimeDelta {
        if self.0 >= earlier.0 {
            TimeDelta((self.0 - earlier.0).min(i64::MAX as u64) as i64)
        } else {
            TimeDelta(0)
        }
    }
}

impl TimeDelta {
    /// The zero duration.
    pub const ZERO: TimeDelta = TimeDelta(0);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: i64) -> Self {
        TimeDelta(ns)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: i64) -> Self {
        TimeDelta(us * 1_000)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: i64) -> Self {
        TimeDelta(ms * 1_000_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: i64) -> Self {
        TimeDelta(s * 1_000_000_000)
    }

    /// The raw (signed) nanosecond count.
    #[inline]
    pub const fn as_nanos(self) -> i64 {
        self.0
    }

    /// The duration in fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// The duration in fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// True when the delta is negative.
    #[inline]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn add(self, rhs: TimeDelta) -> Time {
        if rhs.0 >= 0 {
            Time(self.0 + rhs.0 as u64)
        } else {
            Time(self.0 - rhs.0.unsigned_abs())
        }
    }
}

impl AddAssign<TimeDelta> for Time {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        *self = *self + rhs;
    }
}

impl Sub<TimeDelta> for Time {
    type Output = Time;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> Time {
        self + TimeDelta(-rhs.0)
    }
}

impl Sub<Time> for Time {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: Time) -> TimeDelta {
        TimeDelta(self.0 as i64 - rhs.0 as i64)
    }
}

impl Add for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn add(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 + rhs.0)
    }
}

impl AddAssign for TimeDelta {
    #[inline]
    fn add_assign(&mut self, rhs: TimeDelta) {
        self.0 += rhs.0;
    }
}

impl Sub for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn sub(self, rhs: TimeDelta) -> TimeDelta {
        TimeDelta(self.0 - rhs.0)
    }
}

impl SubAssign for TimeDelta {
    #[inline]
    fn sub_assign(&mut self, rhs: TimeDelta) {
        self.0 -= rhs.0;
    }
}

impl core::ops::Mul<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn mul(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 * rhs as i64)
    }
}

impl core::ops::Div<u64> for TimeDelta {
    type Output = TimeDelta;
    #[inline]
    fn div(self, rhs: u64) -> TimeDelta {
        TimeDelta(self.0 / rhs as i64)
    }
}

impl fmt::Debug for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for Time {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Debug for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for TimeDelta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let abs = self.0.unsigned_abs();
        let sign = if self.0 < 0 { "-" } else { "" };
        if abs >= 1_000_000_000 {
            write!(f, "{sign}{:.3}s", abs as f64 / 1e9)
        } else if abs >= 1_000_000 {
            write!(f, "{sign}{:.3}ms", abs as f64 / 1e6)
        } else if abs >= 1_000 {
            write!(f, "{sign}{:.3}us", abs as f64 / 1e3)
        } else {
            write!(f, "{sign}{abs}ns")
        }
    }
}

impl crate::json::ToJson for Time {
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::U64(self.0)
    }
}

impl crate::json::FromJson for Time {
    fn from_json(value: &crate::json::Json) -> Option<Self> {
        value.as_u64().map(Time)
    }
}

impl crate::json::ToJson for TimeDelta {
    fn to_json(&self) -> crate::json::Json {
        crate::json::Json::I64(self.0)
    }
}

impl crate::json::FromJson for TimeDelta {
    fn from_json(value: &crate::json::Json) -> Option<Self> {
        value.as_i64().map(TimeDelta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_units_agree() {
        assert_eq!(Time::from_secs(1), Time::from_millis(1_000));
        assert_eq!(Time::from_millis(1), Time::from_micros(1_000));
        assert_eq!(Time::from_micros(1), Time::from_nanos(1_000));
        assert_eq!(
            TimeDelta::from_secs(2),
            TimeDelta::from_nanos(2_000_000_000)
        );
    }

    #[test]
    fn add_sub_roundtrip() {
        let t = Time::from_micros(10);
        let d = TimeDelta::from_nanos(123);
        assert_eq!((t + d) - d, t);
        assert_eq!((t + d) - t, d);
    }

    #[test]
    fn negative_delta_subtracts() {
        let t = Time::from_nanos(1_000);
        assert_eq!(t + TimeDelta::from_nanos(-400), Time::from_nanos(600));
    }

    #[test]
    fn saturating_ops_clamp() {
        assert_eq!(
            Time::from_nanos(5).saturating_add(TimeDelta::from_nanos(-10)),
            Time::ZERO
        );
        assert_eq!(
            Time::from_nanos(5).saturating_since(Time::from_nanos(10)),
            TimeDelta::ZERO
        );
        assert_eq!(
            Time::from_nanos(10).saturating_since(Time::from_nanos(4)),
            TimeDelta::from_nanos(6)
        );
    }

    #[test]
    fn delta_scaling() {
        assert_eq!(TimeDelta::from_nanos(10) * 3, TimeDelta::from_nanos(30));
        assert_eq!(TimeDelta::from_nanos(30) / 3, TimeDelta::from_nanos(10));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(Time::from_nanos(12).to_string(), "12ns");
        assert_eq!(Time::from_micros(12).to_string(), "12.000us");
        assert_eq!(Time::from_millis(12).to_string(), "12.000ms");
        assert_eq!(Time::from_secs(12).to_string(), "12.000s");
        assert_eq!(TimeDelta::from_micros(-3).to_string(), "-3.000us");
    }

    #[test]
    fn conversion_accessors() {
        let t = Time::from_micros(1_500);
        assert!((t.as_millis_f64() - 1.5).abs() < 1e-12);
        assert!((t.as_secs_f64() - 0.0015).abs() < 1e-12);
        assert!((TimeDelta::from_micros(2).as_secs_f64() - 2e-6).abs() < 1e-15);
    }
}
