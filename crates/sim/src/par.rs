//! Substrate for the conservative parallel DES core: lineage stamps, the
//! partition-local event queue, a spin barrier, and the epoch-boundary
//! merge that reconstructs the *exact* serial dispatch order.
//!
//! # Why a plain per-shard `(time, local seq)` queue is not enough
//!
//! The serial [`EventQueue`](crate::queue::EventQueue) orders simultaneous
//! events by a **global push sequence**: pushes happen during dispatches, in
//! dispatch order, so the serial tiebreak is lexicographic
//! `(parent dispatch order, intra-dispatch push index)`. A parallel worker
//! processing only its own shard cannot know the *global* dispatch order of
//! the current epoch while the epoch is still running — a cross-shard frame
//! merged in at the last barrier may have been pushed by a dispatch that
//! serially precedes a local dispatch of the same timestamp, in which case
//! its children must win ties against the local dispatch's children. Any
//! scheme that numbers pushes per-shard gets that case wrong.
//!
//! # Lineage stamps
//!
//! Instead, every dispatch mints a [`Stamp`] and every pushed event carries
//! a [`Key`] = `(parent stamp, intra-dispatch push index)`. Stamps start
//! *unresolved*; the barrier merge assigns each one its global dispatch
//! ordinal (exactly the value the serial engine's dispatch counter would
//! have had). The serial tiebreak `(parent ordinal, push index)` is then
//! directly computable. The trick that makes this work *before* resolution
//! is that a worker never needs an ordinal it cannot know:
//!
//! * entries with **resolved** parents (previous epochs, the root, or
//!   barrier-merged arrivals) compare by parent ordinal — final;
//! * a resolved parent always precedes an unresolved one (unresolved
//!   stamps belong to the current epoch; resolved ones dispatched earlier);
//! * two **unresolved** parents are necessarily from the *same* shard
//!   (cross-shard pushes only happen at barriers, with resolved stamps),
//!   where per-shard dispatch order — [`Stamp::local_seq`] — *is* the
//!   serial order restricted to that shard.
//!
//! Resolution therefore never reorders entries that coexist in a shard
//! queue: within a shard, ordinals are assigned in `local_seq` order, and a
//! newly resolved stamp receives an ordinal larger than every previously
//! resolved one. The heap invariant survives the in-place `AtomicU64`
//! store.
//!
//! # Epoch merge
//!
//! [`merge_order`] is a Kahn-style topological replay: dispatch records
//! whose parent is already resolved seed a ready-heap keyed by
//! `(time, parent ordinal, push index)`; popping the minimum assigns the
//! next global ordinal and releases that dispatch's children. The pop
//! sequence equals the serial engine's dispatch sequence for the epoch —
//! the proof is an induction: the serially-next record's parent either
//! resolved before the epoch or dispatched earlier within it (hence
//! already popped), so the record is in the heap, and every other ready
//! record carries a serially-larger key.

use crate::queue::EventToken;
use crate::time::Time;
use std::cmp::{Ordering, Reverse};
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering as AtOrd};
use std::sync::Arc;

/// Sentinel ordinal for a stamp whose global dispatch order is not yet
/// known (its epoch has not reached the barrier merge).
pub const UNRESOLVED: u64 = u64::MAX;

/// Identity of one dispatch (one event pop) in the parallel engine.
///
/// Created by the worker that pops the event; resolved to the global
/// dispatch ordinal by the coordinator during [`merge_order`]. Shared via
/// `Arc` between the dispatch record and every event the dispatch pushed.
#[derive(Debug)]
pub struct Stamp {
    /// Simulated time of the dispatch.
    pub time: Time,
    /// Shard (partition index) the dispatch ran on; `u32::MAX` for the root.
    pub shard: u32,
    /// Per-shard dispatch counter, monotonically increasing over the whole
    /// run — the serial dispatch order restricted to this shard.
    pub local_seq: u64,
    ord: AtomicU64,
}

impl Stamp {
    /// A fresh, unresolved stamp for a dispatch on `shard` at `time`.
    pub fn new(time: Time, shard: u32, local_seq: u64) -> Arc<Stamp> {
        Arc::new(Stamp {
            time,
            shard,
            local_seq,
            ord: AtomicU64::new(UNRESOLVED),
        })
    }

    /// The pre-resolved root stamp: parent of events primed before the
    /// simulation starts (ordinal 0, i.e. before every real dispatch).
    pub fn root() -> Arc<Stamp> {
        Arc::new(Stamp {
            time: Time::ZERO,
            shard: u32::MAX,
            local_seq: 0,
            ord: AtomicU64::new(0),
        })
    }

    /// The global dispatch ordinal, or [`UNRESOLVED`].
    #[inline]
    pub fn ord(&self) -> u64 {
        self.ord.load(AtOrd::Acquire)
    }

    /// Assign the global dispatch ordinal (coordinator only, at the barrier).
    #[inline]
    pub fn resolve(&self, ord: u64) {
        debug_assert_ne!(ord, UNRESOLVED);
        let prev = self.ord.swap(ord, AtOrd::Release);
        debug_assert_eq!(prev, UNRESOLVED, "stamp resolved twice");
    }
}

/// Ordering key of a queued event: which dispatch pushed it, and at which
/// position within that dispatch's program order.
///
/// `idx` counts *every* push intent of the dispatch — local schedules and
/// cross-shard transmit intents alike — because the serial engine's global
/// push counter advances for each of them.
#[derive(Debug, Clone)]
pub struct Key {
    /// Stamp of the dispatch that pushed this event.
    pub parent: Arc<Stamp>,
    /// Position of this push within the parent dispatch's program order.
    pub idx: u32,
}

impl Key {
    /// Serial-order comparison of two same-timestamp events (see the
    /// module docs for why this is computable before full resolution).
    pub fn cmp_key(&self, other: &Key) -> Ordering {
        if Arc::ptr_eq(&self.parent, &other.parent) {
            return self.idx.cmp(&other.idx);
        }
        let (a, b) = (self.parent.ord(), other.parent.ord());
        let parents = match (a == UNRESOLVED, b == UNRESOLVED) {
            (false, false) => a.cmp(&b),
            // Resolved stamps dispatched in an earlier epoch (or are the
            // root): serially before any current-epoch dispatch.
            (false, true) => Ordering::Less,
            (true, false) => Ordering::Greater,
            (true, true) => {
                // Two in-flight dispatches can only meet in one shard's
                // queue if they ran on that shard.
                debug_assert_eq!(
                    self.parent.shard, other.parent.shard,
                    "unresolved stamps from different shards in one queue"
                );
                self.parent.local_seq.cmp(&other.parent.local_seq)
            }
        };
        parents.then_with(|| self.idx.cmp(&other.idx))
    }
}

const NIL: u32 = u32::MAX;

#[derive(Clone, Copy)]
enum Loc {
    Free { next: u32 },
    Heap { pos: u32 },
}

struct Slot<E> {
    gen: u32,
    loc: Loc,
    time: Time,
    entry: Option<(Key, E)>,
}

/// Partition-local event queue for one shard of the parallel engine.
///
/// A slab-backed binary heap ordered by `(time, `[`Key`]`)` — the serial
/// dispatch order restricted to the shard. Hands out generation-stamped
/// [`EventToken`]s with the same cancel-safety contract as
/// [`EventQueue`](crate::queue::EventQueue) (the NIC coalescing timer
/// re-arm path cancels through the same token type in either mode).
pub struct ParQueue<E> {
    slots: Vec<Slot<E>>,
    free_head: u32,
    heap: Vec<u32>,
}

impl<E> Default for ParQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> ParQueue<E> {
    /// An empty queue.
    pub fn new() -> Self {
        ParQueue {
            slots: Vec::new(),
            free_head: NIL,
            heap: Vec::new(),
        }
    }

    /// Number of queued events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The earliest queued time, if any.
    pub fn peek_time(&self) -> Option<Time> {
        self.heap.first().map(|&s| self.slots[s as usize].time)
    }

    /// The `(time, Key)`-minimal entry without removing it, if any.
    ///
    /// The coordinator's serial-window mode uses this to pick the globally
    /// next dispatch across all partition queues without committing a pop.
    pub fn peek(&self) -> Option<(Time, &Key)> {
        let &slot = self.heap.first()?;
        let s = &self.slots[slot as usize];
        Some((
            s.time,
            &s.entry.as_ref().expect("live slot without entry").0,
        ))
    }

    /// Bulk-push a batch of events drained from a coordinator-side staging
    /// buffer (same-epoch fabric reinjections grouped per owner partition).
    ///
    /// Order within the batch is irrelevant to correctness: the heap's pop
    /// order is the total order `(time, Key)` and every `(parent, idx)` pair
    /// identifies a unique event, so any insertion order yields the same
    /// pop sequence.
    pub fn push_batch(&mut self, batch: &mut Vec<(Time, Key, E)>) {
        for (time, key, event) in batch.drain(..) {
            self.push(time, key, event);
        }
    }

    /// Queue `event` at `time` with serial-order key `key`.
    pub fn push(&mut self, time: Time, key: Key, event: E) -> EventToken {
        let slot = if self.free_head != NIL {
            let slot = self.free_head;
            let s = &mut self.slots[slot as usize];
            match s.loc {
                Loc::Free { next } => self.free_head = next,
                Loc::Heap { .. } => unreachable!("free-list slot marked live"),
            }
            s.time = time;
            s.entry = Some((key, event));
            slot
        } else {
            let slot = self.slots.len() as u32;
            self.slots.push(Slot {
                gen: 0,
                loc: Loc::Free { next: NIL },
                time,
                entry: Some((key, event)),
            });
            slot
        };
        let pos = self.heap.len();
        self.heap.push(slot);
        self.slots[slot as usize].loc = Loc::Heap { pos: pos as u32 };
        self.sift_up(pos);
        EventToken::from_parts(slot, self.slots[slot as usize].gen)
    }

    /// Remove and return the `(time, Key)`-minimal event.
    pub fn pop(&mut self) -> Option<(Time, Key, E)> {
        let &slot = self.heap.first()?;
        self.heap_remove(0);
        let s = &mut self.slots[slot as usize];
        let time = s.time;
        let (key, event) = s.entry.take().expect("heap slot without entry");
        Self::free_slot(s, slot, &mut self.free_head);
        Some((time, key, event))
    }

    /// Cancel a queued event. Returns `false` for tokens whose event has
    /// already fired or been cancelled (generation mismatch), `true` on
    /// successful removal.
    pub fn cancel(&mut self, token: EventToken) -> bool {
        let (slot, gen) = token.parts();
        let Some(s) = self.slots.get(slot as usize) else {
            return false;
        };
        if s.gen != gen {
            return false;
        }
        let pos = match s.loc {
            Loc::Heap { pos } => pos as usize,
            Loc::Free { .. } => return false,
        };
        self.heap_remove(pos);
        let s = &mut self.slots[slot as usize];
        s.entry = None;
        Self::free_slot(s, slot, &mut self.free_head);
        true
    }

    fn free_slot(s: &mut Slot<E>, slot: u32, free_head: &mut u32) {
        s.gen = s.gen.wrapping_add(1);
        s.loc = Loc::Free { next: *free_head };
        *free_head = slot;
    }

    /// Remove the heap entry at `pos`, restoring the invariant.
    fn heap_remove(&mut self, pos: usize) {
        let last = self.heap.len() - 1;
        self.heap.swap(pos, last);
        self.heap.pop();
        if pos < self.heap.len() {
            self.set_pos(pos);
            self.sift_down(pos);
            self.sift_up(pos);
        }
    }

    #[inline]
    fn set_pos(&mut self, pos: usize) {
        let slot = self.heap[pos];
        self.slots[slot as usize].loc = Loc::Heap { pos: pos as u32 };
    }

    /// `(time, Key)` strict-less between two live slots.
    fn less(&self, a: u32, b: u32) -> bool {
        let (sa, sb) = (&self.slots[a as usize], &self.slots[b as usize]);
        match sa.time.cmp(&sb.time) {
            Ordering::Equal => {
                let ka = &sa.entry.as_ref().expect("live slot without entry").0;
                let kb = &sb.entry.as_ref().expect("live slot without entry").0;
                ka.cmp_key(kb) == Ordering::Less
            }
            o => o == Ordering::Less,
        }
    }

    fn sift_up(&mut self, mut pos: usize) {
        while pos > 0 {
            let parent = (pos - 1) / 2;
            if self.less(self.heap[pos], self.heap[parent]) {
                self.heap.swap(pos, parent);
                self.set_pos(pos);
                self.set_pos(parent);
                pos = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut pos: usize) {
        loop {
            let left = 2 * pos + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let mut min = left;
            if right < self.heap.len() && self.less(self.heap[right], self.heap[left]) {
                min = right;
            }
            if self.less(self.heap[min], self.heap[pos]) {
                self.heap.swap(min, pos);
                self.set_pos(min);
                self.set_pos(pos);
                pos = min;
            } else {
                break;
            }
        }
    }
}

/// A reusable sense-reversing spin barrier for the epoch protocol.
///
/// Participants spin briefly (the epochs are microseconds of real time
/// apart when the engine is healthy) and then fall back to
/// `thread::yield_now` so oversubscribed hosts — including the degenerate
/// single-core case — still make progress.
pub struct SpinBarrier {
    total: usize,
    count: AtomicUsize,
    gen: AtomicUsize,
}

impl SpinBarrier {
    /// A barrier for `total` participants (> 0).
    pub fn new(total: usize) -> Self {
        assert!(total > 0);
        SpinBarrier {
            total,
            count: AtomicUsize::new(0),
            gen: AtomicUsize::new(0),
        }
    }

    /// Block until all `total` participants have called `wait`.
    pub fn wait(&self) {
        // Spinning only helps when the straggler can run on another core;
        // on a single-core host the peer cannot progress until we yield,
        // so a nonzero spin budget just burns the scheduler quantum.
        static SPIN_LIMIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        let limit = *SPIN_LIMIT.get_or_init(|| match std::thread::available_parallelism() {
            Ok(n) if n.get() > 1 => 1 << 14,
            _ => 0,
        });
        let gen = self.gen.load(AtOrd::Acquire);
        if self.count.fetch_add(1, AtOrd::AcqRel) + 1 == self.total {
            self.count.store(0, AtOrd::Relaxed);
            self.gen.fetch_add(1, AtOrd::Release);
        } else {
            let mut spins = 0u32;
            while self.gen.load(AtOrd::Acquire) == gen {
                if spins < limit {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// One dispatch record, appended by a worker for every event it pops
/// during an epoch, in pop order.
#[derive(Debug, Clone)]
pub struct Rec {
    /// The stamp minted for this dispatch (resolved by [`merge_order`]).
    pub stamp: Arc<Stamp>,
    /// Stamp of the dispatch that pushed the popped event.
    pub parent: Arc<Stamp>,
    /// Push index of the popped event within its parent dispatch.
    pub parent_idx: u32,
}

/// Ready-heap key of [`merge_order_with`]: the serial pop order
/// `(time, parent ordinal, push index)`. The `(shard, index)` tail is never
/// reached by distinct records — a `(parent, idx)` pair identifies one
/// pushed event.
type ReadyKey = (u64, u64, u32, u32, u32);

/// Reusable scratch for [`merge_order_with`].
///
/// The merge needs a child-index map, a ready heap, and one `Vec` per
/// epoch-internal parent; allocating them per epoch shows up at high
/// epoch rates (sparse phases merge a handful of records per barrier).
/// Keeping the scratch on the coordinator makes the steady-state merge
/// allocation-free: the map and heap retain capacity across epochs and
/// drained child vectors return to a pool.
#[derive(Default)]
pub struct MergeScratch {
    /// Records whose parent dispatch is itself part of this epoch, keyed
    /// by the parent's `(shard, local_seq)` identity; released when the
    /// parent resolves.
    children: HashMap<(u32, u64), Vec<(u32, u32)>>,
    ready: BinaryHeap<Reverse<ReadyKey>>,
    /// Emptied child vectors, kept for reuse.
    pool: Vec<Vec<(u32, u32)>>,
    #[cfg(debug_assertions)]
    cursors: Vec<usize>,
}

impl MergeScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Replay one epoch's dispatch records from all shards in exact serial
/// dispatch order, resolving each record's stamp to its global ordinal.
///
/// `shards[s]` is shard `s`'s records in pop order. `next_ord` is the
/// global dispatch counter (continues across epochs; the root stamp owns
/// ordinal 0, so it starts at 1). `visit(s, i, rec)` is called once per
/// record, in serial dispatch order, *after* `rec.stamp` is resolved — the
/// coordinator uses it to replay side effects (transmit intents, trace and
/// sanitizer records) in the order the serial engine would have produced
/// them.
///
/// Panics if the records do not form a consistent epoch (a record's
/// unresolved parent must itself be a record of this epoch).
pub fn merge_order(shards: &[Vec<Rec>], next_ord: &mut u64, visit: impl FnMut(usize, usize, &Rec)) {
    merge_order_with(&mut MergeScratch::new(), shards, next_ord, visit);
}

/// [`merge_order`] with caller-owned [`MergeScratch`] — allocation-free in
/// the steady state. The scratch is left empty (capacity retained) on
/// return, ready for the next epoch.
pub fn merge_order_with(
    scratch: &mut MergeScratch,
    shards: &[Vec<Rec>],
    next_ord: &mut u64,
    mut visit: impl FnMut(usize, usize, &Rec),
) {
    let total: usize = shards.iter().map(Vec::len).sum();
    if total == 0 {
        return;
    }
    debug_assert!(scratch.children.is_empty() && scratch.ready.is_empty());
    for (s, recs) in shards.iter().enumerate() {
        for (i, rec) in recs.iter().enumerate() {
            debug_assert_eq!(rec.stamp.shard as usize, s);
            let pord = rec.parent.ord();
            if pord == UNRESOLVED {
                scratch
                    .children
                    .entry((rec.parent.shard, rec.parent.local_seq))
                    .or_insert_with(|| scratch.pool.pop().unwrap_or_default())
                    .push((s as u32, i as u32));
            } else {
                scratch.ready.push(Reverse((
                    rec.stamp.time.as_nanos(),
                    pord,
                    rec.parent_idx,
                    s as u32,
                    i as u32,
                )));
            }
        }
    }
    let mut visited = 0usize;
    #[cfg(debug_assertions)]
    {
        scratch.cursors.clear();
        scratch.cursors.resize(shards.len(), 0);
    }
    while let Some(Reverse((_, _, _, s, i))) = scratch.ready.pop() {
        let (s, i) = (s as usize, i as usize);
        let rec = &shards[s][i];
        #[cfg(debug_assertions)]
        {
            // Serial order restricted to one shard is that shard's pop order.
            assert_eq!(
                scratch.cursors[s], i,
                "merge visited shard {s} out of pop order"
            );
            scratch.cursors[s] += 1;
        }
        rec.stamp.resolve(*next_ord);
        visit(s, i, rec);
        let ord = *next_ord;
        *next_ord += 1;
        visited += 1;
        if let Some(mut kids) = scratch
            .children
            .remove(&(rec.stamp.shard, rec.stamp.local_seq))
        {
            for &(cs, ci) in &kids {
                let child = &shards[cs as usize][ci as usize];
                scratch.ready.push(Reverse((
                    child.stamp.time.as_nanos(),
                    ord,
                    child.parent_idx,
                    cs,
                    ci,
                )));
            }
            kids.clear();
            scratch.pool.push(kids);
        }
    }
    assert_eq!(
        visited, total,
        "epoch merge did not visit every dispatch record (dangling parent?)"
    );
    debug_assert!(scratch.children.is_empty());
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::EventQueue;

    #[test]
    fn key_orders_by_parent_then_idx() {
        let root = Stamp::root();
        let a = Key {
            parent: root.clone(),
            idx: 0,
        };
        let b = Key {
            parent: root.clone(),
            idx: 3,
        };
        assert_eq!(a.cmp_key(&b), Ordering::Less);
        assert_eq!(b.cmp_key(&a), Ordering::Greater);
        assert_eq!(a.cmp_key(&a), Ordering::Equal);

        // Resolved (earlier epoch) beats unresolved (current epoch)…
        let resolved = Stamp::new(Time::from_nanos(50), 1, 7);
        resolved.resolve(12);
        let unresolved = Stamp::new(Time::from_nanos(10), 1, 9);
        let r = Key {
            parent: resolved.clone(),
            idx: 9,
        };
        let u = Key {
            parent: unresolved.clone(),
            idx: 0,
        };
        assert_eq!(r.cmp_key(&u), Ordering::Less);
        assert_eq!(u.cmp_key(&r), Ordering::Greater);

        // …two unresolved same-shard stamps order by local dispatch order…
        let u2 = Key {
            parent: Stamp::new(Time::from_nanos(10), 1, 8),
            idx: 5,
        };
        assert_eq!(u2.cmp_key(&u), Ordering::Less);

        // …and resolution to a later ordinal preserves that order.
        u2.parent.resolve(20);
        unresolved.resolve(21);
        assert_eq!(u2.cmp_key(&u), Ordering::Less);
        assert_eq!(r.cmp_key(&u), Ordering::Less);
    }

    #[test]
    fn par_queue_pops_in_time_then_key_order() {
        let root = Stamp::root();
        let mut q: ParQueue<&'static str> = ParQueue::new();
        let key = |idx| Key {
            parent: root.clone(),
            idx,
        };
        q.push(Time::from_nanos(30), key(0), "t30");
        q.push(Time::from_nanos(10), key(3), "t10-idx3");
        q.push(Time::from_nanos(10), key(1), "t10-idx1");
        q.push(Time::from_nanos(20), key(2), "t20");
        assert_eq!(q.len(), 4);
        assert_eq!(q.peek_time(), Some(Time::from_nanos(10)));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, ["t10-idx1", "t10-idx3", "t20", "t30"]);
        assert!(q.is_empty());
    }

    #[test]
    fn par_queue_cancel_rejects_stale_tokens() {
        let root = Stamp::root();
        let mut q: ParQueue<u32> = ParQueue::new();
        let key = |idx| Key {
            parent: root.clone(),
            idx,
        };
        let t1 = q.push(Time::from_nanos(5), key(0), 1);
        let t2 = q.push(Time::from_nanos(1), key(1), 2);
        assert!(q.cancel(t1), "live token cancels");
        assert!(!q.cancel(t1), "second cancel is rejected");
        // Slot reuse bumps the generation: the old token must not cancel
        // the new occupant.
        let t3 = q.push(Time::from_nanos(9), key(2), 3);
        assert!(!q.cancel(t1));
        let (_, _, e) = q.pop().unwrap();
        assert_eq!(e, 2);
        assert!(!q.cancel(t2), "popped event's token is dead");
        assert!(q.cancel(t3));
        assert!(q.is_empty());
    }

    #[test]
    fn peek_and_batch_push_agree_with_pop_order() {
        let root = Stamp::root();
        let mut q: ParQueue<u32> = ParQueue::new();
        assert!(q.peek().is_none());
        let key = |idx| Key {
            parent: root.clone(),
            idx,
        };
        let mut batch = vec![
            (Time::from_nanos(7), key(2), 2u32),
            (Time::from_nanos(3), key(1), 1),
            (Time::from_nanos(7), key(0), 0),
        ];
        q.push_batch(&mut batch);
        assert!(batch.is_empty(), "push_batch drains the staging buffer");
        let (t, k) = q.peek().unwrap();
        assert_eq!((t, k.idx), (Time::from_nanos(3), 1));
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, _, e)| e).collect();
        assert_eq!(order, [1, 0, 2], "time first, then key idx");
    }

    #[test]
    fn merge_scratch_is_reusable_across_epochs() {
        let root = Stamp::root();
        let t = Time::from_nanos(5);
        let mut scratch = MergeScratch::new();
        let mut next_ord = 1;
        // Two epochs, each with an epoch-internal parent→child edge, run
        // through the same scratch.
        for epoch in 0..2u64 {
            let a = Stamp::new(t, 0, 2 * epoch);
            let b = Stamp::new(t, 0, 2 * epoch + 1);
            let shards = vec![vec![
                Rec {
                    stamp: a.clone(),
                    parent: root.clone(),
                    parent_idx: epoch as u32,
                },
                Rec {
                    stamp: b.clone(),
                    parent: a.clone(),
                    parent_idx: 0,
                },
            ]];
            let mut order = Vec::new();
            merge_order_with(&mut scratch, &shards, &mut next_ord, |_, i, _| {
                order.push(i)
            });
            assert_eq!(order, [0, 1]);
            assert_eq!((a.ord(), b.ord()), (2 * epoch + 1, 2 * epoch + 2));
        }
        assert_eq!(next_ord, 5);
    }

    #[test]
    fn spin_barrier_synchronizes_rounds() {
        use std::sync::atomic::AtomicU64;
        const THREADS: usize = 3;
        const ROUNDS: u64 = 50;
        let barrier = SpinBarrier::new(THREADS);
        let counter = AtomicU64::new(0);
        std::thread::scope(|s| {
            for _ in 0..THREADS {
                s.spawn(|| {
                    for round in 0..ROUNDS {
                        counter.fetch_add(1, AtOrd::Relaxed);
                        barrier.wait();
                        // Every participant incremented before anyone left.
                        let seen = counter.load(AtOrd::Relaxed);
                        assert!(seen >= (round + 1) * THREADS as u64);
                        barrier.wait();
                    }
                });
            }
        });
        assert_eq!(counter.load(AtOrd::Relaxed), ROUNDS * THREADS as u64);
    }

    #[test]
    fn merge_order_releases_children_after_parents() {
        // Shard 0 pops A (parent root, idx 1); shard 1 pops B (parent root,
        // idx 0) and then C whose parent is A — C must come after A even
        // though all three share a timestamp.
        let root = Stamp::root();
        let t = Time::from_nanos(100);
        let a = Stamp::new(t, 0, 0);
        let b = Stamp::new(t, 1, 0);
        let c = Stamp::new(t, 1, 1);
        let shards = vec![
            vec![Rec {
                stamp: a.clone(),
                parent: root.clone(),
                parent_idx: 1,
            }],
            vec![
                Rec {
                    stamp: b.clone(),
                    parent: root.clone(),
                    parent_idx: 0,
                },
                Rec {
                    stamp: c.clone(),
                    parent: a.clone(),
                    parent_idx: 0,
                },
            ],
        ];
        let mut next_ord = 1;
        let mut order = Vec::new();
        merge_order(&shards, &mut next_ord, |s, i, _| order.push((s, i)));
        assert_eq!(order, [(1, 0), (0, 0), (1, 1)], "B (idx 0), A (idx 1), C");
        assert_eq!((b.ord(), a.ord(), c.ord()), (1, 2, 3));
        assert_eq!(next_ord, 4);
    }

    // ------------------------------------------------------------------
    // Toy-model equivalence: a miniature conservative-parallel simulation
    // run epoch-by-epoch through ParQueue + merge_order must dispatch in
    // exactly the serial EventQueue order, including same-timestamp ties.
    // ------------------------------------------------------------------

    const LOOKAHEAD: u64 = 10;
    const MAX_DEPTH: u32 = 6;

    fn xorshift(mut x: u64) -> u64 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    }

    /// Deterministic children of a dispatched toy event, in program order:
    /// `(dest shard, delay, child id)`. Same-shard children land 0–2 ns
    /// out (heavy same-timestamp ties, including zero-delay self-pushes);
    /// cross-shard children respect the lookahead, like fabric transit.
    fn children(id: u64, depth: u32, shard: u32, parts: u32) -> Vec<(u32, u64, u64)> {
        if depth >= MAX_DEPTH {
            return Vec::new();
        }
        let mut r = xorshift(id ^ 0x9E37_79B9_7F4A_7C15);
        let n = r % 4;
        let mut out = Vec::new();
        for k in 0..n {
            r = xorshift(r.wrapping_add(k + 1));
            let dest = (r % parts as u64) as u32;
            r = xorshift(r);
            let delay = if dest == shard {
                r % 3
            } else {
                LOOKAHEAD + r % 5
            };
            out.push((
                dest,
                delay,
                xorshift(id.wrapping_mul(31).wrapping_add(k + 1)),
            ));
        }
        out
    }

    /// Serial reference: one EventQueue, dispatch log of `(ns, shard, id)`.
    fn serial_log(parts: u32, seeds: &[(u32, u64)]) -> Vec<(u64, u32, u64)> {
        let mut q = EventQueue::new();
        for &(shard, id) in seeds {
            q.push(Time::ZERO, (shard, id, 0u32));
        }
        let mut log = Vec::new();
        while let Some((t, (shard, id, depth))) = q.pop() {
            log.push((t.as_nanos(), shard, id));
            for (dest, delay, cid) in children(id, depth, shard, parts) {
                q.push(
                    Time::from_nanos(t.as_nanos() + delay),
                    (dest, cid, depth + 1),
                );
            }
        }
        log
    }

    /// Parallel model: per-shard ParQueues advanced in lookahead-wide
    /// epochs, cross-shard sends buffered as intents and replayed at the
    /// barrier in merge order — the exact structure of the real engine's
    /// coordinator, minus the threads.
    fn parallel_log(parts: u32, seeds: &[(u32, u64)]) -> Vec<(u64, u32, u64)> {
        struct ShardRt {
            queue: ParQueue<(u64, u32)>,
            next_local_seq: u64,
        }
        let root = Stamp::root();
        let mut shards: Vec<ShardRt> = (0..parts)
            .map(|_| ShardRt {
                queue: ParQueue::new(),
                next_local_seq: 0,
            })
            .collect();
        for (i, &(shard, id)) in seeds.iter().enumerate() {
            shards[shard as usize].queue.push(
                Time::ZERO,
                Key {
                    parent: root.clone(),
                    idx: i as u32,
                },
                (id, 0),
            );
        }
        // One cross-shard intent: `(dest, at, child id, depth, push idx)`.
        type Intent = (u32, Time, u64, u32, u32);
        let mut next_ord = 1u64;
        let mut log = Vec::new();
        while let Some(t0) = shards.iter().filter_map(|s| s.queue.peek_time()).min() {
            let epoch_end = Time::from_nanos(t0.as_nanos() + LOOKAHEAD);
            let mut recs: Vec<Vec<Rec>> = (0..parts).map(|_| Vec::new()).collect();
            // Per shard, per record: the dispatch payload and its intents.
            let mut payloads: Vec<Vec<(u64, u64)>> = (0..parts).map(|_| Vec::new()).collect();
            let mut intents: Vec<Vec<Vec<Intent>>> = (0..parts).map(|_| Vec::new()).collect();
            for (sid, st) in shards.iter_mut().enumerate() {
                while st.queue.peek_time().is_some_and(|t| t < epoch_end) {
                    let (t, key, (id, depth)) = st.queue.pop().unwrap();
                    let stamp = Stamp::new(t, sid as u32, st.next_local_seq);
                    st.next_local_seq += 1;
                    let mut my_intents = Vec::new();
                    for (idx, (dest, delay, cid)) in children(id, depth, sid as u32, parts)
                        .into_iter()
                        .enumerate()
                    {
                        let at = Time::from_nanos(t.as_nanos() + delay);
                        if dest == sid as u32 {
                            st.queue.push(
                                at,
                                Key {
                                    parent: stamp.clone(),
                                    idx: idx as u32,
                                },
                                (cid, depth + 1),
                            );
                        } else {
                            my_intents.push((dest, at, cid, depth + 1, idx as u32));
                        }
                    }
                    payloads[sid].push((t.as_nanos(), id));
                    intents[sid].push(my_intents);
                    recs[sid].push(Rec {
                        stamp,
                        parent: key.parent,
                        parent_idx: key.idx,
                    });
                }
            }
            merge_order(&recs, &mut next_ord, |s, i, rec| {
                let (ns, id) = payloads[s][i];
                log.push((ns, s as u32, id));
                for &(dest, at, cid, depth, idx) in &intents[s][i] {
                    assert!(at >= epoch_end, "cross-shard send violated lookahead");
                    shards[dest as usize].queue.push(
                        at,
                        Key {
                            parent: rec.stamp.clone(),
                            idx,
                        },
                        (cid, depth),
                    );
                }
            });
        }
        log
    }

    #[test]
    fn same_timestamp_events_keep_serial_order_across_epochs() {
        for parts in [2u32, 3, 5] {
            for trial in 0u64..4 {
                let seeds: Vec<(u32, u64)> = (0..parts * 2)
                    .map(|i| (i % parts, xorshift(0xDEAD_BEEF + trial * 1000 + i as u64)))
                    .collect();
                let serial = serial_log(parts, &seeds);
                let parallel = parallel_log(parts, &seeds);
                assert!(
                    serial.len() > 50,
                    "toy model too small to be meaningful ({} dispatches)",
                    serial.len()
                );
                let ties = serial.windows(2).filter(|w| w[0].0 == w[1].0).count();
                assert!(
                    ties > 10,
                    "toy model produced too few same-timestamp ties ({ties})"
                );
                assert_eq!(
                    serial, parallel,
                    "parallel dispatch order diverged (parts={parts}, trial={trial})"
                );
            }
        }
    }
}
