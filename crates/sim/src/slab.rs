//! Generation-stamped slab: dense O(1) storage with use-after-free
//! detection.
//!
//! The same idiom the [`crate::EventQueue`] uses for event tokens, made
//! generic so stateful protocol layers can replace per-packet map lookups
//! with handle dereferences: values live in a dense `Vec`, freed slots go
//! on a free list, and every slot carries a generation counter that is
//! bumped on free. A [`SlabToken`] captures `(slot, generation)` at insert
//! time, so dereferencing a token whose value was since removed — the slab
//! analogue of a dangling pointer — panics instead of silently reading
//! whatever reused the slot.
//!
//! Lookups by token are a bounds check plus a generation compare; no
//! hashing, no tree walk, no allocation. The intended pattern is a small
//! key→token map touched only at birth/death of an entry, with every
//! hot-path access going through the token.

/// Handle to a value in a [`Slab`]: slot index plus the generation the
/// slot had when the value was inserted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SlabToken {
    slot: u32,
    gen: u32,
}

impl SlabToken {
    /// The slot index (stable for the lifetime of the entry).
    pub fn slot(self) -> u32 {
        self.slot
    }
}

struct Entry<T> {
    gen: u32,
    val: Option<T>,
}

/// Dense generation-checked storage. See the module docs.
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    /// Empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert `val`, reusing a freed slot if one exists.
    pub fn insert(&mut self, val: T) -> SlabToken {
        self.len += 1;
        if let Some(slot) = self.free.pop() {
            let e = &mut self.entries[slot as usize];
            debug_assert!(e.val.is_none());
            e.val = Some(val);
            SlabToken { slot, gen: e.gen }
        } else {
            let slot = u32::try_from(self.entries.len()).expect("slab capacity");
            self.entries.push(Entry {
                gen: 0,
                val: Some(val),
            });
            SlabToken { slot, gen: 0 }
        }
    }

    #[track_caller]
    fn check(&self, tok: SlabToken) -> &Entry<T> {
        let e = &self.entries[tok.slot as usize];
        assert_eq!(
            e.gen, tok.gen,
            "stale slab token: slot {} is at generation {}, token was minted at {}",
            tok.slot, e.gen, tok.gen
        );
        e
    }

    /// True if `tok` still refers to a live value.
    pub fn contains(&self, tok: SlabToken) -> bool {
        self.entries
            .get(tok.slot as usize)
            .is_some_and(|e| e.gen == tok.gen && e.val.is_some())
    }

    /// Dereference. Panics if the token is stale (the value was removed).
    #[track_caller]
    pub fn get(&self, tok: SlabToken) -> &T {
        self.check(tok)
            .val
            .as_ref()
            .expect("stale slab token: slot was freed")
    }

    /// Mutable dereference. Panics if the token is stale.
    #[track_caller]
    pub fn get_mut(&mut self, tok: SlabToken) -> &mut T {
        self.check(tok);
        self.entries[tok.slot as usize]
            .val
            .as_mut()
            .expect("stale slab token: slot was freed")
    }

    /// Remove and return the value. The slot's generation is bumped, so
    /// every outstanding token to it becomes stale.
    #[track_caller]
    pub fn remove(&mut self, tok: SlabToken) -> T {
        self.check(tok);
        let e = &mut self.entries[tok.slot as usize];
        let val = e.val.take().expect("stale slab token: slot was freed");
        e.gen = e.gen.wrapping_add(1);
        self.free.push(tok.slot);
        self.len -= 1;
        val
    }

    /// Iterate live values in slot order. Slot order is allocation-history
    /// dependent — callers needing a deterministic order must iterate
    /// their own key→token index instead.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.entries.iter().filter_map(|e| e.val.as_ref())
    }

    /// Mutably iterate live values in slot order (same caveat as [`iter`](Slab::iter)).
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.entries.iter_mut().filter_map(|e| e.val.as_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(*s.get(a), "a");
        assert_eq!(*s.get_mut(b), "b");
        assert_eq!(s.remove(a), "a");
        assert_eq!(s.len(), 1);
        assert!(!s.contains(a));
        assert!(s.contains(b));
    }

    #[test]
    fn slots_are_reused_with_fresh_generations() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        let b = s.insert(2u32);
        assert_eq!(b.slot(), a.slot(), "freed slot is reused");
        assert_ne!(a, b, "but the generation differs");
        assert_eq!(*s.get(b), 2);
    }

    #[test]
    #[should_panic(expected = "stale slab token")]
    fn stale_get_panics() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        s.insert(2u32); // reuses the slot at a new generation
        s.get(a);
    }

    #[test]
    #[should_panic(expected = "stale slab token")]
    fn stale_remove_panics() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        s.remove(a);
    }

    #[test]
    #[should_panic(expected = "stale slab token")]
    fn freed_slot_without_reuse_still_panics() {
        let mut s = Slab::new();
        let a = s.insert(1u32);
        s.remove(a);
        // Slot not yet reused: generation was bumped on free, so the old
        // token must not read the tombstone either.
        s.get(a);
    }

    #[test]
    fn iter_skips_freed_slots() {
        let mut s = Slab::new();
        let _a = s.insert(1u32);
        let b = s.insert(2u32);
        let _c = s.insert(3u32);
        s.remove(b);
        let live: Vec<u32> = s.iter().copied().collect();
        assert_eq!(live, vec![1, 3]);
    }
}
