//! Deterministic random-number helpers.
//!
//! Every stochastic element of the simulation (jitter, reorder injection,
//! round-robin perturbation) draws from a [`SimRng`] derived from the
//! experiment seed. Sub-streams are split with [`SimRng::fork`] so that
//! adding a consumer in one component never perturbs the draw sequence seen
//! by another — a prerequisite for comparing strategies on identical traffic.
//!
//! The generator is a self-contained xoshiro256++ (public-domain
//! construction by Blackman & Vigna) seeded through SplitMix64, so the
//! workspace carries no external RNG dependency and the draw sequences are
//! identical on every platform.

/// A seeded simulation RNG (xoshiro256++ core).
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create from a 64-bit experiment seed.
    pub fn new(seed: u64) -> Self {
        // Expand the seed with SplitMix64, as the xoshiro authors recommend.
        let mut x = seed;
        let mut s = [0u64; 4];
        for slot in &mut s {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            *slot = splitmix64(x);
        }
        // All-zero state would be a fixed point; seed 0 must still work.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E3779B97F4A7C15;
        }
        SimRng { s }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Derive an independent sub-stream labelled by `stream`.
    ///
    /// The label is mixed with the parent state via SplitMix64 so different
    /// labels give decorrelated streams even for adjacent integers.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.next_u64();
        SimRng::new(splitmix64(base ^ splitmix64(stream)))
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        // 53 uniformly random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[lo, hi)`. `hi` must exceed `lo`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        let span = hi - lo;
        // Rejection sampling to kill modulo bias (Lemire-style threshold).
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            if r >= threshold {
                return lo + (r % span);
            }
        }
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival gaps). Returns 0 for a non-positive mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; clamp the uniform away from 0 to avoid ln(0).
        let u = self.unit().max(1e-12);
        -mean * u.ln()
    }

    /// Uniform jitter in `[-spread, +spread]` nanoseconds.
    pub fn jitter_ns(&mut self, spread: u64) -> i64 {
        if spread == 0 {
            return 0;
        }
        self.range_u64(0, 2 * spread + 1) as i64 - spread as i64
    }
}

/// SplitMix64 mixing function (public domain construction).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = SimRng::new(0);
        let draws: Vec<u64> = (0..8).map(|_| r.next_u64()).collect();
        assert!(draws.iter().any(|&d| d != 0));
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(f1.range_u64(0, 1 << 40), f2.range_u64(0, 1 << 40));
        }
        let mut parent3 = SimRng::new(7);
        let mut g = parent3.fork(4);
        let a: Vec<u64> = (0..8).map(|_| f1.range_u64(0, 1 << 40)).collect();
        let b: Vec<u64> = (0..8).map(|_| g.range_u64(0, 1 << 40)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn range_bounds_are_respected() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let v = r.range_u64(10, 17);
            assert!((10..17).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(17);
        assert_eq!(r.jitter_ns(0), 0);
        let mut seen_neg = false;
        let mut seen_pos = false;
        for _ in 0..1000 {
            let j = r.jitter_ns(50);
            assert!((-50..=50).contains(&j));
            seen_neg |= j < 0;
            seen_pos |= j > 0;
        }
        assert!(seen_neg && seen_pos, "jitter covers both signs");
    }
}
