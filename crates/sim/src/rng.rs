//! Deterministic random-number helpers.
//!
//! Every stochastic element of the simulation (jitter, reorder injection,
//! round-robin perturbation) draws from a [`SimRng`] derived from the
//! experiment seed. Sub-streams are split with [`SimRng::fork`] so that
//! adding a consumer in one component never perturbs the draw sequence seen
//! by another — a prerequisite for comparing strategies on identical traffic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A seeded simulation RNG (wraps `rand::SmallRng`).
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create from a 64-bit experiment seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent sub-stream labelled by `stream`.
    ///
    /// The label is mixed with the parent seed via SplitMix64 so different
    /// labels give decorrelated streams even for adjacent integers.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base: u64 = self.inner.gen();
        SimRng::new(splitmix64(base ^ splitmix64(stream)))
    }

    /// Uniform value in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[lo, hi)`. `hi` must exceed `lo`.
    #[inline]
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(hi > lo);
        self.inner.gen_range(lo..hi)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.inner.gen::<f64>() < p
    }

    /// Exponentially distributed value with the given mean (for Poisson
    /// arrival gaps). Returns 0 for a non-positive mean.
    pub fn exp(&mut self, mean: f64) -> f64 {
        if mean <= 0.0 {
            return 0.0;
        }
        // Inverse-CDF; clamp the uniform away from 0 to avoid ln(0).
        let u = self.inner.gen::<f64>().max(1e-12);
        -mean * u.ln()
    }

    /// Uniform jitter in `[-spread, +spread]` nanoseconds.
    pub fn jitter_ns(&mut self, spread: u64) -> i64 {
        if spread == 0 {
            return 0;
        }
        self.inner.gen_range(-(spread as i64)..=(spread as i64))
    }
}

/// SplitMix64 mixing function (public domain construction).
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E3779B97F4A7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D049BB133111EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..100 {
            assert_eq!(a.range_u64(0, 1_000_000), b.range_u64(0, 1_000_000));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let va: Vec<u64> = (0..16).map(|_| a.range_u64(0, u64::MAX - 1)).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.range_u64(0, u64::MAX - 1)).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn forks_are_decorrelated_and_deterministic() {
        let mut parent1 = SimRng::new(7);
        let mut parent2 = SimRng::new(7);
        let mut f1 = parent1.fork(3);
        let mut f2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(f1.range_u64(0, 1 << 40), f2.range_u64(0, 1 << 40));
        }
        let mut parent3 = SimRng::new(7);
        let mut g = parent3.fork(4);
        let a: Vec<u64> = (0..8).map(|_| f1.range_u64(0, 1 << 40)).collect();
        let b: Vec<u64> = (0..8).map(|_| g.range_u64(0, 1 << 40)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::new(11);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn exp_mean_is_plausible() {
        let mut r = SimRng::new(13);
        let n = 20_000;
        let mean = 250.0;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let observed = sum / n as f64;
        assert!(
            (observed - mean).abs() < mean * 0.05,
            "observed mean {observed} too far from {mean}"
        );
        assert_eq!(r.exp(0.0), 0.0);
        assert_eq!(r.exp(-1.0), 0.0);
    }

    #[test]
    fn jitter_bounds() {
        let mut r = SimRng::new(17);
        assert_eq!(r.jitter_ns(0), 0);
        for _ in 0..1000 {
            let j = r.jitter_ns(50);
            assert!((-50..=50).contains(&j));
        }
    }
}
