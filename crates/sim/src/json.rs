//! Minimal self-contained JSON value model, writer and parser.
//!
//! The reproduction persists experiment results, metrics snapshots and trace
//! exports as JSON (Chrome trace-event files, JSONL event streams, result
//! tables under `results/`). The toolchain runs in hermetic environments with
//! no registry access, so this module provides the small JSON surface the
//! workspace needs instead of pulling in an external crate:
//!
//! * [`Json`] — an ordered JSON value (object keys keep insertion order so
//!   exported files are stable and diffable),
//! * [`Json::render`] / [`Json::render_pretty`] — writers,
//! * [`Json::parse`] — a strict recursive-descent parser (used by round-trip
//!   tests and the trace-schema golden test),
//! * [`ToJson`] / [`FromJson`] — conversion traits with impls for the
//!   primitives, plus the [`impl_to_json!`](crate::impl_to_json) /
//!   [`impl_from_json!`](crate::impl_from_json) field-list macros that replace
//!   derive-style serialisation for plain structs.

use std::fmt::Write as _;

/// An owned JSON value. Objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Signed integer (serialised without decimal point).
    I64(i64),
    /// Unsigned integer (serialised without decimal point).
    U64(u64),
    /// Floating-point number. Non-finite values serialise as `null`.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, insertion-ordered.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Build an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>>(pairs: Vec<(K, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Object field lookup (None for non-objects or missing keys).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The array items (None for non-arrays).
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (None for non-strings).
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric value widened to `f64` (None for non-numbers).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::I64(v) => Some(v as f64),
            Json::U64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// Numeric value as `u64` (None for non-numbers and negatives).
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::I64(v) => u64::try_from(v).ok(),
            Json::U64(v) => Some(v),
            Json::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    /// Numeric value as `i64` (None for non-numbers and out-of-range).
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Json::I64(v) => Some(v),
            Json::U64(v) => i64::try_from(v).ok(),
            Json::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    /// The boolean payload (None for non-booleans).
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::I64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::U64(v) => {
                let _ = write!(out, "{v}");
            }
            Json::F64(v) => {
                if v.is_finite() {
                    if v.fract() == 0.0 && v.abs() < 1e15 {
                        let _ = write!(out, "{v:.1}");
                    } else {
                        let _ = write!(out, "{v}");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. The whole input must be one value (surrounding
    /// whitespace allowed).
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let bytes = input.as_bytes();
        let mut pos = 0usize;
        skip_ws(bytes, &mut pos);
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at("trailing characters", pos));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON parse failure with a byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// What went wrong.
    pub message: String,
    /// Byte offset into the input.
    pub offset: usize,
}

impl JsonError {
    fn at(message: &str, offset: usize) -> Self {
        JsonError {
            message: message.to_string(),
            offset,
        }
    }
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(JsonError::at("unexpected character", *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    let Some(&b) = bytes.get(*pos) else {
        return Err(JsonError::at("unexpected end of input", *pos));
    };
    match b {
        b'{' => parse_object(bytes, pos),
        b'[' => parse_array(bytes, pos),
        b'"' => Ok(Json::Str(parse_string(bytes, pos)?)),
        b't' => parse_lit(bytes, pos, "true", Json::Bool(true)),
        b'f' => parse_lit(bytes, pos, "false", Json::Bool(false)),
        b'n' => parse_lit(bytes, pos, "null", Json::Null),
        b'-' | b'0'..=b'9' => parse_number(bytes, pos),
        _ => Err(JsonError::at("unexpected character", *pos)),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(JsonError::at("invalid literal", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at("invalid number", start))?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::U64(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(Json::I64(v));
        }
    }
    text.parse::<f64>()
        .map(Json::F64)
        .map_err(|_| JsonError::at("invalid number", start))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err(JsonError::at("unterminated string", *pos));
        };
        *pos += 1;
        match b {
            b'"' => return Ok(out),
            b'\\' => {
                let Some(&esc) = bytes.get(*pos) else {
                    return Err(JsonError::at("unterminated escape", *pos));
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        if *pos + 4 > bytes.len() {
                            return Err(JsonError::at("truncated \\u escape", *pos));
                        }
                        let hex = std::str::from_utf8(&bytes[*pos..*pos + 4])
                            .map_err(|_| JsonError::at("invalid \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at("invalid \\u escape", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are not needed by our own writers;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(JsonError::at("unknown escape", *pos)),
                }
            }
            _ => {
                // Re-decode UTF-8: step back and take the full char.
                *pos -= 1;
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at("invalid utf-8", *pos))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => {
                *pos += 1;
            }
            Some(&b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(JsonError::at("expected ',' or ']'", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(&b',') => {
                *pos += 1;
            }
            Some(&b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(JsonError::at("expected ',' or '}'", *pos)),
        }
    }
}

// ---------------------------------------------------------------------------
// Conversion traits
// ---------------------------------------------------------------------------

/// Types that can render themselves as a [`Json`] value.
pub trait ToJson {
    /// Convert to a JSON value.
    fn to_json(&self) -> Json;
}

/// Types that can be reconstructed from a [`Json`] value.
pub trait FromJson: Sized {
    /// Parse from a JSON value (None when the shape does not match).
    fn from_json(value: &Json) -> Option<Self>;
}

impl ToJson for Json {
    fn to_json(&self) -> Json {
        self.clone()
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Json {
        Json::Bool(*self)
    }
}

impl FromJson for bool {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_bool()
    }
}

macro_rules! impl_json_uint {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::U64(*self as u64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Option<Self> {
                value.as_u64().and_then(|v| <$ty>::try_from(v).ok())
            }
        }
    )*};
}

macro_rules! impl_json_int {
    ($($ty:ty),*) => {$(
        impl ToJson for $ty {
            fn to_json(&self) -> Json {
                Json::I64(*self as i64)
            }
        }
        impl FromJson for $ty {
            fn from_json(value: &Json) -> Option<Self> {
                value.as_i64().and_then(|v| <$ty>::try_from(v).ok())
            }
        }
    )*};
}

impl_json_uint!(u8, u16, u32, u64, usize);
impl_json_int!(i8, i16, i32, i64, isize);

impl ToJson for f64 {
    fn to_json(&self) -> Json {
        Json::F64(*self)
    }
}

impl FromJson for f64 {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_f64()
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> Json {
        Json::F64(f64::from(*self))
    }
}

impl ToJson for String {
    fn to_json(&self) -> Json {
        Json::Str(self.clone())
    }
}

impl FromJson for String {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_str().map(str::to_string)
    }
}

impl ToJson for &str {
    fn to_json(&self) -> Json {
        Json::Str((*self).to_string())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Json {
        match self {
            Some(v) => v.to_json(),
            None => Json::Null,
        }
    }
}

impl<T: FromJson> FromJson for Option<T> {
    fn from_json(value: &Json) -> Option<Self> {
        match value {
            Json::Null => Some(None),
            other => T::from_json(other).map(Some),
        }
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: FromJson> FromJson for Vec<T> {
    fn from_json(value: &Json) -> Option<Self> {
        value.as_arr()?.iter().map(T::from_json).collect()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Json {
        Json::Arr(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for &T
where
    T: ?Sized,
{
    fn to_json(&self) -> Json {
        (**self).to_json()
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    fn to_json(&self) -> Json {
        Json::Arr(vec![self.0.to_json(), self.1.to_json()])
    }
}

impl<A: FromJson, B: FromJson> FromJson for (A, B) {
    fn from_json(value: &Json) -> Option<Self> {
        match value.as_arr()? {
            [a, b] => Some((A::from_json(a)?, B::from_json(b)?)),
            _ => None,
        }
    }
}

/// Implement [`ToJson`] for a plain struct by listing its fields.
///
/// ```
/// use omx_sim::impl_to_json;
/// use omx_sim::json::ToJson;
///
/// struct Point { x: u32, y: u32 }
/// impl_to_json!(Point { x, y });
///
/// let json = Point { x: 1, y: 2 }.to_json().render();
/// assert_eq!(json, r#"{"x":1,"y":2}"#);
/// ```
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),* $(,)? }) => {
        impl $crate::json::ToJson for $ty {
            fn to_json(&self) -> $crate::json::Json {
                $crate::json::Json::Obj(vec![
                    $((stringify!($field).to_string(),
                       $crate::json::ToJson::to_json(&self.$field)),)*
                ])
            }
        }
    };
}

/// Implement [`FromJson`] for a plain struct by listing its fields.
#[macro_export]
macro_rules! impl_from_json {
    ($ty:ident { $($field:ident),* $(,)? }) => {
        impl $crate::json::FromJson for $ty {
            fn from_json(value: &$crate::json::Json) -> Option<Self> {
                Some($ty {
                    $($field: $crate::json::FromJson::from_json(
                        value.get(stringify!($field))?,
                    )?,)*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::I64(-7).render(), "-7");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::Str("a\"b\n".into()).render(), r#""a\"b\n""#);
    }

    #[test]
    fn renders_nested_compact_and_pretty() {
        let v = Json::obj(vec![
            ("name", Json::Str("run".into())),
            ("values", Json::Arr(vec![Json::U64(1), Json::U64(2)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(v.render(), r#"{"name":"run","values":[1,2],"empty":[]}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"name\": \"run\""));
        assert!(pretty.ends_with('}'));
    }

    #[test]
    fn parse_roundtrip() {
        let src = r#"{"a":[1,2.5,-3,true,null,"x\ty"],"b":{"c":{}},"d":18446744073709551615}"#;
        let v = Json::parse(src).expect("parses");
        assert_eq!(Json::parse(&v.render()), Ok(v.clone()));
        assert_eq!(v.get("d").and_then(Json::as_u64), Some(u64::MAX));
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[5].as_str(),
            Some("x\ty")
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn struct_macros_roundtrip() {
        #[derive(Debug, PartialEq)]
        struct Sample {
            id: u64,
            scale: f64,
            label: String,
            tags: Vec<u32>,
        }
        impl_to_json!(Sample {
            id,
            scale,
            label,
            tags
        });
        impl_from_json!(Sample {
            id,
            scale,
            label,
            tags
        });

        let s = Sample {
            id: 9,
            scale: 0.25,
            label: "x".into(),
            tags: vec![1, 2, 3],
        };
        let rendered = s.to_json().render();
        let back = Sample::from_json(&Json::parse(&rendered).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn option_and_pairs() {
        let some: Option<u32> = Some(5);
        let none: Option<u32> = None;
        assert_eq!(some.to_json().render(), "5");
        assert_eq!(none.to_json().render(), "null");
        let pair = (1u32, "a".to_string());
        let j = pair.to_json();
        assert_eq!(<(u32, String)>::from_json(&j), Some((1, "a".to_string())));
    }
}
