//! End-to-end tests of NIC-resident collectives ([`CollectiveExec::NicOffload`]):
//! exactly-once completion, byte conservation at quiescence, hop-count-independent
//! interrupt load, loss recovery, and serial/parallel byte-identity.

use omx_core::system::ClusterConfig;
use omx_mpi::{CollectiveExec, MpiWorld, Op, WorldSpec};

fn offload_world(ranks: usize, rpn: usize, cfg: ClusterConfig) -> MpiWorld {
    MpiWorld::new(
        WorldSpec {
            ranks,
            ranks_per_node: rpn,
        },
        cfg,
    )
    .with_collective_exec(CollectiveExec::NicOffload)
}

/// One offloaded barrier + bcast + allreduce per rank.
fn coll_program(_rank: usize) -> Vec<Op> {
    vec![
        Op::Barrier,
        Op::Bcast {
            root: 0,
            bytes: 256,
        },
        Op::Allreduce { bytes: 8 },
    ]
}

/// Every world size from 2 to 64 ranks completes all three offloaded
/// collectives exactly once per rank and drains to quiescence with the
/// sanitizer's byte-conservation invariants intact (`run_drained` asserts
/// them; `pending_report` additionally flags stranded offload state).
#[test]
fn exactly_once_and_conserved_at_every_world_size() {
    for ranks in 2..=64usize {
        let (report, _san) =
            offload_world(ranks, 2, ClusterConfig::default()).run_drained(coll_program);
        assert_eq!(report.per_rank_finish_ns.len(), ranks, "{ranks} ranks");
        let posted: u64 = report.offload.iter().map(|c| c.ops_posted).sum();
        let completed: u64 = report.offload.iter().map(|c| c.ops_completed).sum();
        assert_eq!(posted, 3 * ranks as u64, "{ranks} ranks: posts");
        assert_eq!(completed, posted, "{ranks} ranks: exactly-once completion");
        let dupes: u64 = report.offload.iter().map(|c| c.duplicates).sum();
        let retx: u64 = report.offload.iter().map(|c| c.retransmits).sum();
        assert_eq!(retx, 0, "{ranks} ranks: lossless run retransmitted");
        assert_eq!(dupes, 0, "{ranks} ranks: lossless run saw duplicates");
    }
}

/// The paper-side claim the offload engine exists to make: per-host
/// interrupt load is exactly one completion IRQ per op per resident rank —
/// independent of the ⌈log₂ P⌉ hop count, so constant across world sizes.
#[test]
fn interrupt_load_is_independent_of_hop_count() {
    let rpn = 2usize;
    let ops = 3u64;
    for ranks in [4usize, 8, 16, 32, 64] {
        let (report, _) =
            offload_world(ranks, rpn, ClusterConfig::default()).run_drained(coll_program);
        for (node, m) in report.metrics.nodes.iter().enumerate() {
            assert_eq!(
                m.nic.interrupts.get(),
                rpn as u64 * ops,
                "{ranks} ranks: node {node} interrupt count varies with scale"
            );
        }
    }
}

/// Offloaded collectives survive injected frame loss: the NIC-to-NIC
/// ack/RTO machinery retransmits until every hop lands, the job still
/// completes exactly once per rank, and the drain reaches quiescence.
#[test]
fn loss_injected_run_drains_to_quiescence() {
    let mut cfg = ClusterConfig::default();
    cfg.fabric.disturbance.loss_probability = 0.05;
    let (report, san) = offload_world(16, 2, cfg).run_drained(coll_program);
    assert_eq!(report.per_rank_finish_ns.len(), 16);
    let completed: u64 = report.offload.iter().map(|c| c.ops_completed).sum();
    assert_eq!(completed, 3 * 16, "every op completed exactly once");
    let retx: u64 = report.offload.iter().map(|c| c.retransmits).sum();
    assert!(retx > 0, "5% loss over 16 ranks should trigger retransmits");
    assert!(san.all_violations().is_empty());
}

/// The conservative parallel engine must produce byte-identical reports
/// for offloaded collectives at any worker count — including the offload
/// counter harvest and the loss-injected path.
#[test]
fn parallel_offload_drain_is_byte_identical_to_serial() {
    use omx_sim::json::ToJson;
    let run = |jobs: usize, loss: bool| {
        omx_sim::pool::with_sim_jobs(jobs, || {
            let mut cfg = ClusterConfig::default();
            if loss {
                cfg.fabric.disturbance.loss_probability = 0.02;
            }
            let (report, san) = offload_world(16, 2, cfg).run_drained(coll_program);
            let offload: Vec<String> = report
                .offload
                .iter()
                .map(|c| c.to_json().render())
                .collect();
            format!(
                "{}|{:?}|{}|{:?}|{:?}",
                report.elapsed_ns,
                report.per_rank_finish_ns,
                report.metrics.to_json().render(),
                offload,
                san.all_violations(),
            )
        })
    };
    for loss in [false, true] {
        let serial = run(1, loss);
        for jobs in [2, 8] {
            assert_eq!(
                serial,
                run(jobs, loss),
                "divergence at --sim-jobs {jobs} (loss={loss})"
            );
        }
    }
}

/// Collectives the firmware cannot run (payload over the cap, alltoall)
/// transparently fall back to host execution inside the same program.
#[test]
fn oversized_and_unsupported_collectives_fall_back_to_host() {
    let (report, _) = offload_world(8, 2, ClusterConfig::default()).run_drained(|_| {
        vec![
            Op::Barrier, // offloaded
            Op::Bcast {
                root: 0,
                bytes: 64_000,
            }, // over max_payload → host
            Op::Alltoall { bytes: 512 }, // never offloaded
            Op::Allreduce { bytes: 8 }, // offloaded
        ]
    });
    let posted: u64 = report.offload.iter().map(|c| c.ops_posted).sum();
    assert_eq!(
        posted,
        2 * 8,
        "barrier + small allreduce offloaded per rank"
    );
    let completed: u64 = report.offload.iter().map(|c| c.ops_completed).sum();
    assert_eq!(completed, posted);
    // The host path carried the big bcast + alltoall over the fabric.
    assert!(report.metrics.frames_carried > 0);
}
