//! Property tests for the collective round decompositions: conservation
//! (every send has a matching receive in the same round) and termination.

use omx_mpi::collectives::{
    allgather_round, allreduce_round, alltoall_round, alltoallv_round, barrier_round, bcast_round,
    reduce_round, RoundAction,
};
use proptest::prelude::*;

fn pow2_ranks() -> impl Strategy<Value = usize> {
    prop_oneof![Just(2usize), Just(4), Just(8), Just(16), Just(32)]
}

/// Check that, in every round, send/recv/exchange actions pair up exactly.
fn assert_round_consistent(
    ranks: usize,
    round: u32,
    action_of: impl Fn(usize) -> Option<RoundAction>,
) -> Result<bool, TestCaseError> {
    let actions: Vec<Option<RoundAction>> = (0..ranks).map(&action_of).collect();
    let any = actions.iter().any(|a| a.is_some());
    if !any {
        return Ok(false); // collective finished for everyone
    }
    for (r, action) in actions.iter().enumerate() {
        match action {
            None | Some(RoundAction::Idle) => {}
            Some(RoundAction::Exchange { peer, .. }) => {
                prop_assert_ne!(*peer, r, "self-exchange");
                match actions[*peer] {
                    Some(RoundAction::Exchange { peer: back, .. }) => {
                        prop_assert_eq!(back, r, "round {}: exchange not mutual", round)
                    }
                    ref other => prop_assert!(false, "partner of {} has {:?}", r, other),
                }
            }
            Some(RoundAction::Send { peer, .. }) => match actions[*peer] {
                Some(RoundAction::Recv { peer: from }) => {
                    prop_assert_eq!(from, r, "round {}: recv source mismatch", round)
                }
                ref other => prop_assert!(false, "send target of {} has {:?}", r, other),
            },
            Some(RoundAction::Recv { peer }) => match actions[*peer] {
                Some(RoundAction::Send { peer: to, .. }) => prop_assert_eq!(to, r),
                ref other => prop_assert!(false, "recv source of {} has {:?}", r, other),
            },
        }
    }
    Ok(true)
}

proptest! {
    #[test]
    fn barrier_rounds_pair_up(ranks in pow2_ranks()) {
        for round in 0..16 {
            if !assert_round_consistent(ranks, round, |r| barrier_round(r, ranks, round))? {
                return Ok(());
            }
        }
        prop_assert!(false, "barrier never terminated");
    }

    #[test]
    fn bcast_rounds_pair_up(ranks in pow2_ranks(), root in 0usize..32) {
        let root = root % ranks;
        for round in 0..16 {
            if !assert_round_consistent(ranks, round, |r| bcast_round(r, ranks, root, 64, round))? {
                return Ok(());
            }
        }
        prop_assert!(false, "bcast never terminated");
    }

    #[test]
    fn reduce_rounds_pair_up(ranks in pow2_ranks(), root in 0usize..32) {
        let root = root % ranks;
        for round in 0..16 {
            if !assert_round_consistent(ranks, round, |r| reduce_round(r, ranks, root, 64, round))? {
                return Ok(());
            }
        }
        prop_assert!(false, "reduce never terminated");
    }

    #[test]
    fn allreduce_and_allgather_pair_up(ranks in pow2_ranks(), bytes in 1u32..1_000_000) {
        for round in 0..16 {
            if !assert_round_consistent(ranks, round, |r| allreduce_round(r, ranks, bytes, round))? {
                return Ok(());
            }
        }
        prop_assert!(false, "allreduce never terminated");
    }

    #[test]
    fn allgather_total_volume_is_full_vector(ranks in pow2_ranks(), bytes in 1u32..10_000) {
        // After all rounds, each rank has sent bytes * (ranks - 1) in total
        // (its contribution forwarded along the doubling tree).
        let mut sent = 0u64;
        for round in 0..16 {
            match allgather_round(0, ranks, bytes, round) {
                Some(RoundAction::Exchange { send_bytes, .. }) => sent += u64::from(send_bytes),
                None => break,
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        prop_assert_eq!(sent, u64::from(bytes) * (ranks as u64 - 1));
    }

    #[test]
    fn alltoall_is_a_permutation_every_round(ranks in pow2_ranks(), bytes in 1u32..100_000) {
        for round in 0..(ranks as u32 - 1) {
            let mut seen = vec![false; ranks];
            for r in 0..ranks {
                let Some(RoundAction::Exchange { peer, .. }) = alltoall_round(r, ranks, bytes, round) else {
                    prop_assert!(false, "round {round} missing for rank {r}");
                    unreachable!()
                };
                prop_assert!(!seen[peer], "peer {peer} used twice in round {round}");
                seen[peer] = true;
            }
            prop_assert!(seen.iter().all(|&s| s), "round {round} not a permutation");
        }
        prop_assert!(alltoall_round(0, ranks, bytes, ranks as u32 - 1).is_none());
    }

    #[test]
    fn alltoallv_sends_each_destination_its_size(
        ranks in pow2_ranks(),
        seed in any::<u64>(),
    ) {
        // Deterministic pseudo-random per-destination sizes.
        let sizes: Vec<u32> = (0..ranks)
            .map(|i| ((seed >> (i % 48)) & 0xFFFF) as u32)
            .collect();
        let mut sent_to = vec![None::<u32>; ranks];
        for round in 0..64 {
            match alltoallv_round(0, ranks, &sizes, round) {
                Some(RoundAction::Exchange { peer, send_bytes, .. }) => {
                    prop_assert!(sent_to[peer].is_none(), "peer {peer} visited twice");
                    sent_to[peer] = Some(send_bytes);
                }
                None => break,
                other => prop_assert!(false, "unexpected {other:?}"),
            }
        }
        for (peer, sent) in sent_to.iter().enumerate() {
            if peer == 0 {
                prop_assert!(sent.is_none(), "no self-send");
            } else {
                prop_assert_eq!(sent.expect("every peer visited"), sizes[peer]);
            }
        }
    }
}
