//! Property tests for the collective round decompositions: conservation
//! (every send has a matching receive in the same round), exactly-once
//! delivery of every expected block, and termination — for EVERY world
//! size 2–64, power-of-two or not.
//!
//! Randomised with the simulator's deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_core::system::ClusterConfig;
use omx_mpi::collectives::{
    allgather_round, allreduce_round, alltoall_round, alltoallv_round, barrier_round, bcast_round,
    reduce_round, RoundAction,
};
use omx_mpi::{MpiWorld, Op, WorldSpec};
use omx_sim::rng::SimRng;

/// Every world size the scale experiments may legally request.
fn world_sizes() -> impl Iterator<Item = usize> {
    2..=64
}

/// Check that, in every round, send/recv/exchange actions pair up exactly.
/// Returns false once the collective has finished for everyone.
fn assert_round_consistent(
    ranks: usize,
    round: u32,
    action_of: impl Fn(usize) -> Option<RoundAction>,
) -> bool {
    let actions: Vec<Option<RoundAction>> = (0..ranks).map(&action_of).collect();
    let any = actions.iter().any(|a| a.is_some());
    if !any {
        return false; // collective finished for everyone
    }
    for (r, action) in actions.iter().enumerate() {
        match action {
            None | Some(RoundAction::Idle) => {}
            Some(RoundAction::Exchange { peer, .. }) => {
                assert_ne!(*peer, r, "self-exchange");
                match actions[*peer] {
                    Some(RoundAction::Exchange { peer: back, .. }) => {
                        assert_eq!(back, r, "round {round}: exchange not mutual")
                    }
                    ref other => panic!("partner of {r} has {other:?}"),
                }
            }
            Some(RoundAction::Send { peer, .. }) => match actions[*peer] {
                Some(RoundAction::Recv { peer: from }) => {
                    assert_eq!(from, r, "round {round}: recv source mismatch")
                }
                ref other => panic!("send target of {r} has {other:?}"),
            },
            Some(RoundAction::Recv { peer }) => match actions[*peer] {
                Some(RoundAction::Send { peer: to, .. }) => assert_eq!(to, r),
                ref other => panic!("recv source of {r} has {other:?}"),
            },
            Some(RoundAction::SendRecv { to, from, .. }) => {
                assert_ne!(*to, r, "self-send in round {round}");
                assert_ne!(*from, r, "self-recv in round {round}");
                match actions[*to] {
                    Some(RoundAction::SendRecv { from: back, .. }) => assert_eq!(
                        back, r,
                        "round {round}: {to} does not expect a block from {r}"
                    ),
                    ref other => panic!("send target of {r} has {other:?}"),
                }
                match actions[*from] {
                    Some(RoundAction::SendRecv { to: fwd, .. }) => assert_eq!(
                        fwd, r,
                        "round {round}: {from} does not send the block {r} expects"
                    ),
                    ref other => panic!("recv source of {r} has {other:?}"),
                }
            }
        }
    }
    true
}

/// Drive `action_of(rank, round)` to termination, asserting per-round
/// pairing, and return for each rank the list of (source, round) blocks it
/// received. Panics if the collective has not finished within `max_rounds`.
fn collect_deliveries(
    ranks: usize,
    max_rounds: u32,
    action_of: impl Fn(usize, u32) -> Option<RoundAction>,
) -> Vec<Vec<(usize, u32)>> {
    let mut received: Vec<Vec<(usize, u32)>> = vec![Vec::new(); ranks];
    for round in 0..=max_rounds {
        if !assert_round_consistent(ranks, round, |r| action_of(r, round)) {
            return received;
        }
        assert!(
            round < max_rounds,
            "collective never terminated ({ranks} ranks)"
        );
        for (r, inbox) in received.iter_mut().enumerate() {
            match action_of(r, round) {
                Some(RoundAction::Exchange { peer, .. }) => inbox.push((peer, round)),
                Some(RoundAction::Recv { peer }) => inbox.push((peer, round)),
                Some(RoundAction::SendRecv { from, .. }) => inbox.push((from, round)),
                _ => {}
            }
        }
    }
    unreachable!()
}

#[test]
fn barrier_rounds_pair_up_and_deliver_exactly_once() {
    for ranks in world_sizes() {
        let received = collect_deliveries(ranks, 16, |r, round| barrier_round(r, ranks, round));
        let rounds = (ranks as u64).next_power_of_two().trailing_zeros();
        for (r, blocks) in received.iter().enumerate() {
            assert_eq!(
                blocks.len(),
                rounds as usize,
                "rank {r}/{ranks}: one token per round"
            );
            // Exactly one token per round — no duplicates.
            let mut per_round: Vec<u32> = blocks.iter().map(|&(_, round)| round).collect();
            per_round.dedup();
            assert_eq!(
                per_round.len(),
                rounds as usize,
                "rank {r}: duplicate round"
            );
        }
    }
}

#[test]
fn bcast_reaches_every_rank_exactly_once() {
    let mut rng = SimRng::new(0x5EED_4001);
    for ranks in world_sizes() {
        let root = rng.range_u64(0, 64) as usize % ranks;
        let received =
            collect_deliveries(ranks, 16, |r, round| bcast_round(r, ranks, root, 64, round));
        for (r, blocks) in received.iter().enumerate() {
            let expect = usize::from(r != root);
            assert_eq!(
                blocks.len(),
                expect,
                "rank {r}/{ranks} (root {root}): bcast must deliver exactly once"
            );
        }
    }
}

#[test]
fn reduce_collects_every_contribution_exactly_once() {
    let mut rng = SimRng::new(0x5EED_4002);
    for ranks in world_sizes() {
        let root = rng.range_u64(0, 64) as usize % ranks;
        let received = collect_deliveries(ranks, 16, |r, round| {
            reduce_round(r, ranks, root, 64, round)
        });
        // Binomial reduce: every rank's partial flows up once, so the total
        // number of deliveries is exactly ranks - 1 and nobody receives a
        // block twice in the same round from the same source.
        let total: usize = received.iter().map(Vec::len).sum();
        assert_eq!(total, ranks - 1, "{ranks} ranks (root {root})");
        for (r, blocks) in received.iter().enumerate() {
            let mut seen = blocks.clone();
            seen.sort_unstable();
            seen.dedup();
            assert_eq!(seen.len(), blocks.len(), "rank {r}: duplicate block");
        }
    }
}

#[test]
fn allreduce_pairs_up_and_terminates_for_any_world() {
    let mut rng = SimRng::new(0x5EED_4003);
    for ranks in world_sizes() {
        let bytes = rng.range_u64(1, 1_000_000) as u32;
        let received = collect_deliveries(ranks, 32, |r, round| {
            allreduce_round(r, ranks, bytes, round)
        });
        if ranks.is_power_of_two() {
            // Recursive doubling: log2(P) exchanges per rank.
            let rounds = ranks.trailing_zeros() as usize;
            for blocks in &received {
                assert_eq!(blocks.len(), rounds);
            }
        } else {
            // Reduce + bcast composition: ranks-1 deliveries each way.
            let total: usize = received.iter().map(Vec::len).sum();
            assert_eq!(total, 2 * (ranks - 1), "{ranks} ranks");
        }
    }
}

#[test]
fn allgather_total_volume_is_full_vector() {
    let mut rng = SimRng::new(0x5EED_4004);
    for ranks in world_sizes() {
        let bytes = rng.range_u64(1, 10_000) as u32;
        // After all rounds, each rank has sent bytes * (ranks - 1) in total
        // (doubling tree for powers of two, the ring otherwise).
        let mut sent = 0u64;
        for round in 0..128 {
            match allgather_round(0, ranks, bytes, round) {
                Some(RoundAction::Exchange { send_bytes, .. }) => sent += u64::from(send_bytes),
                Some(RoundAction::SendRecv { bytes: b, .. }) => sent += u64::from(b),
                None => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(sent, u64::from(bytes) * (ranks as u64 - 1), "{ranks} ranks");
        // And the schedule itself pairs up.
        let received = collect_deliveries(ranks, 128, |r, round| {
            allgather_round(r, ranks, bytes, round)
        });
        if !ranks.is_power_of_two() {
            // Ring: every rank receives exactly ranks - 1 blocks, one per
            // round, always from its left neighbour.
            for (r, blocks) in received.iter().enumerate() {
                assert_eq!(blocks.len(), ranks - 1, "rank {r}/{ranks}");
                let left = (r + ranks - 1) % ranks;
                assert!(blocks.iter().all(|&(from, _)| from == left));
            }
        }
    }
}

#[test]
fn alltoall_visits_every_peer_exactly_once() {
    let mut rng = SimRng::new(0x5EED_4005);
    for ranks in world_sizes() {
        let bytes = rng.range_u64(1, 100_000) as u32;
        let received = collect_deliveries(ranks, 128, |r, round| {
            alltoall_round(r, ranks, bytes, round)
        });
        for (r, blocks) in received.iter().enumerate() {
            // Every rank hears from every other rank exactly once: this is
            // precisely the sanitizer's duplicate-delivery invariant at the
            // schedule level.
            let mut sources: Vec<usize> = blocks.iter().map(|&(from, _)| from).collect();
            sources.sort_unstable();
            let expect: Vec<usize> = (0..ranks).filter(|&p| p != r).collect();
            assert_eq!(sources, expect, "rank {r}/{ranks}");
        }
    }
}

#[test]
fn alltoallv_sends_each_destination_its_size() {
    let mut rng = SimRng::new(0x5EED_4006);
    for ranks in world_sizes() {
        let seed = rng.next_u64();
        // Deterministic pseudo-random per-destination sizes.
        let sizes: Vec<u32> = (0..ranks)
            .map(|i| ((seed >> (i % 48)) & 0xFFFF) as u32)
            .collect();
        let mut sent_to = vec![None::<u32>; ranks];
        for round in 0..128 {
            let (peer, send_bytes) = match alltoallv_round(0, ranks, &sizes, round) {
                Some(RoundAction::Exchange {
                    peer, send_bytes, ..
                }) => (peer, send_bytes),
                Some(RoundAction::SendRecv { to, bytes, .. }) => (to, bytes),
                None => break,
                other => panic!("unexpected {other:?}"),
            };
            assert!(sent_to[peer].is_none(), "peer {peer} visited twice");
            sent_to[peer] = Some(send_bytes);
        }
        for (peer, sent) in sent_to.iter().enumerate() {
            if peer == 0 {
                assert!(sent.is_none(), "no self-send");
            } else {
                assert_eq!(
                    sent.expect("every peer visited"),
                    sizes[peer],
                    "{ranks} ranks"
                );
            }
        }
    }
}

/// End-to-end: a sample of non-power-of-two (and one power-of-two) worlds
/// runs every collective through the full simulator, drains to quiescence,
/// and the sim-sanitizer asserts exact byte conservation — every expected
/// byte delivered exactly once, no duplicates, nothing stranded.
#[test]
fn collectives_drain_clean_on_odd_world_sizes() {
    for &(ranks, rpn) in &[(3usize, 1usize), (5, 1), (6, 2), (8, 2), (12, 4)] {
        let spec = WorldSpec {
            ranks,
            ranks_per_node: rpn,
        };
        let world = MpiWorld::new(spec, ClusterConfig::default());
        let (report, sanitizer) = world.run_drained(|_| {
            vec![
                Op::Barrier,
                Op::Allreduce { bytes: 64 },
                Op::Allgather { bytes: 256 },
                Op::Alltoall { bytes: 128 },
                Op::Bcast {
                    root: 1,
                    bytes: 512,
                },
                Op::Reduce {
                    root: 0,
                    bytes: 512,
                },
            ]
        });
        assert_eq!(report.per_rank_finish_ns.len(), ranks);
        assert!(report.elapsed_ns > 0, "{ranks} ranks");
        assert!(sanitizer.all_violations().is_empty(), "{ranks} ranks");
    }
}
