//! Property tests for the collective round decompositions: conservation
//! (every send has a matching receive in the same round) and termination.
//!
//! Randomised with the simulator's deterministic [`SimRng`] (fixed seeds, so
//! failures reproduce exactly) instead of an external property-test harness.

use omx_mpi::collectives::{
    allgather_round, allreduce_round, alltoall_round, alltoallv_round, barrier_round, bcast_round,
    reduce_round, RoundAction,
};
use omx_sim::rng::SimRng;

const POW2_RANKS: [usize; 5] = [2, 4, 8, 16, 32];

/// Check that, in every round, send/recv/exchange actions pair up exactly.
/// Returns false once the collective has finished for everyone.
fn assert_round_consistent(
    ranks: usize,
    round: u32,
    action_of: impl Fn(usize) -> Option<RoundAction>,
) -> bool {
    let actions: Vec<Option<RoundAction>> = (0..ranks).map(&action_of).collect();
    let any = actions.iter().any(|a| a.is_some());
    if !any {
        return false; // collective finished for everyone
    }
    for (r, action) in actions.iter().enumerate() {
        match action {
            None | Some(RoundAction::Idle) => {}
            Some(RoundAction::Exchange { peer, .. }) => {
                assert_ne!(*peer, r, "self-exchange");
                match actions[*peer] {
                    Some(RoundAction::Exchange { peer: back, .. }) => {
                        assert_eq!(back, r, "round {round}: exchange not mutual")
                    }
                    ref other => panic!("partner of {r} has {other:?}"),
                }
            }
            Some(RoundAction::Send { peer, .. }) => match actions[*peer] {
                Some(RoundAction::Recv { peer: from }) => {
                    assert_eq!(from, r, "round {round}: recv source mismatch")
                }
                ref other => panic!("send target of {r} has {other:?}"),
            },
            Some(RoundAction::Recv { peer }) => match actions[*peer] {
                Some(RoundAction::Send { peer: to, .. }) => assert_eq!(to, r),
                ref other => panic!("recv source of {r} has {other:?}"),
            },
        }
    }
    true
}

#[test]
fn barrier_rounds_pair_up() {
    for ranks in POW2_RANKS {
        let mut terminated = false;
        for round in 0..16 {
            if !assert_round_consistent(ranks, round, |r| barrier_round(r, ranks, round)) {
                terminated = true;
                break;
            }
        }
        assert!(terminated, "barrier never terminated for {ranks} ranks");
    }
}

#[test]
fn bcast_rounds_pair_up() {
    let mut rng = SimRng::new(0x5EED_4001);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let root = rng.range_u64(0, 32) as usize % ranks;
            let mut terminated = false;
            for round in 0..16 {
                if !assert_round_consistent(ranks, round, |r| {
                    bcast_round(r, ranks, root, 64, round)
                }) {
                    terminated = true;
                    break;
                }
            }
            assert!(terminated, "bcast never terminated for {ranks} ranks");
        }
    }
}

#[test]
fn reduce_rounds_pair_up() {
    let mut rng = SimRng::new(0x5EED_4002);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let root = rng.range_u64(0, 32) as usize % ranks;
            let mut terminated = false;
            for round in 0..16 {
                if !assert_round_consistent(ranks, round, |r| {
                    reduce_round(r, ranks, root, 64, round)
                }) {
                    terminated = true;
                    break;
                }
            }
            assert!(terminated, "reduce never terminated for {ranks} ranks");
        }
    }
}

#[test]
fn allreduce_and_allgather_pair_up() {
    let mut rng = SimRng::new(0x5EED_4003);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let bytes = rng.range_u64(1, 1_000_000) as u32;
            let mut terminated = false;
            for round in 0..16 {
                if !assert_round_consistent(ranks, round, |r| {
                    allreduce_round(r, ranks, bytes, round)
                }) {
                    terminated = true;
                    break;
                }
            }
            assert!(terminated, "allreduce never terminated for {ranks} ranks");
        }
    }
}

#[test]
fn allgather_total_volume_is_full_vector() {
    let mut rng = SimRng::new(0x5EED_4004);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let bytes = rng.range_u64(1, 10_000) as u32;
            // After all rounds, each rank has sent bytes * (ranks - 1) in
            // total (its contribution forwarded along the doubling tree).
            let mut sent = 0u64;
            for round in 0..16 {
                match allgather_round(0, ranks, bytes, round) {
                    Some(RoundAction::Exchange { send_bytes, .. }) => sent += u64::from(send_bytes),
                    None => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            assert_eq!(sent, u64::from(bytes) * (ranks as u64 - 1));
        }
    }
}

#[test]
fn alltoall_is_a_permutation_every_round() {
    let mut rng = SimRng::new(0x5EED_4005);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let bytes = rng.range_u64(1, 100_000) as u32;
            for round in 0..(ranks as u32 - 1) {
                let mut seen = vec![false; ranks];
                for r in 0..ranks {
                    let Some(RoundAction::Exchange { peer, .. }) =
                        alltoall_round(r, ranks, bytes, round)
                    else {
                        panic!("round {round} missing for rank {r}");
                    };
                    assert!(!seen[peer], "peer {peer} used twice in round {round}");
                    seen[peer] = true;
                }
                assert!(seen.iter().all(|&s| s), "round {round} not a permutation");
            }
            assert!(alltoall_round(0, ranks, bytes, ranks as u32 - 1).is_none());
        }
    }
}

#[test]
fn alltoallv_sends_each_destination_its_size() {
    let mut rng = SimRng::new(0x5EED_4006);
    for ranks in POW2_RANKS {
        for _case in 0..8 {
            let seed = rng.next_u64();
            // Deterministic pseudo-random per-destination sizes.
            let sizes: Vec<u32> = (0..ranks)
                .map(|i| ((seed >> (i % 48)) & 0xFFFF) as u32)
                .collect();
            let mut sent_to = vec![None::<u32>; ranks];
            for round in 0..64 {
                match alltoallv_round(0, ranks, &sizes, round) {
                    Some(RoundAction::Exchange {
                        peer, send_bytes, ..
                    }) => {
                        assert!(sent_to[peer].is_none(), "peer {peer} visited twice");
                        sent_to[peer] = Some(send_bytes);
                    }
                    None => break,
                    other => panic!("unexpected {other:?}"),
                }
            }
            for (peer, sent) in sent_to.iter().enumerate() {
                if peer == 0 {
                    assert!(sent.is_none(), "no self-send");
                } else {
                    assert_eq!(sent.expect("every peer visited"), sizes[peer]);
                }
            }
        }
    }
}
