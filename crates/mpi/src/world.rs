//! Job launcher: ranks → cluster wiring → run → report.

use crate::executor::RankActor;
use crate::ops::Op;
use omx_core::metrics::ClusterMetrics;
use omx_core::system::{Cluster, ClusterConfig};
use omx_core::telemetry::{Telemetry, TelemetryConfig};
use omx_core::wire::EndpointAddr;
use omx_sim::stats::Histogram;
use omx_sim::{StopCondition, Time};
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

/// Rank-to-node placement (block distribution, like the paper's
/// `mpirun -np 16 --bynode=false` over 2 nodes).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorldSpec {
    /// Total ranks.
    pub ranks: usize,
    /// Ranks per node (8 in the paper: one per core).
    pub ranks_per_node: usize,
}

impl WorldSpec {
    /// The paper's configuration: 16 ranks over 2 nodes.
    pub fn paper_16x2() -> Self {
        WorldSpec {
            ranks: 16,
            ranks_per_node: 8,
        }
    }

    /// Number of nodes this world needs.
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.ranks_per_node)
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> u16 {
        (rank / self.ranks_per_node) as u16
    }

    /// Endpoint index of `rank` on its node.
    pub fn ep_of(&self, rank: usize) -> u8 {
        (rank % self.ranks_per_node) as u8
    }

    /// Endpoint address of `rank`.
    pub fn addr(&self, rank: usize) -> EndpointAddr {
        EndpointAddr {
            node: omx_core::wire::NodeId(self.node_of(rank)),
            endpoint: self.ep_of(rank),
        }
    }

    /// True when both ranks share a node (shared-memory path).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }
}

/// Where collectives execute: on the host CPUs (decomposed into
/// point-to-point rounds that each cost per-hop interrupts) or on the NIC
/// (the firmware runs the schedule; the host sees exactly one completion
/// interrupt per operation per rank).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CollectiveExec {
    /// Software collectives over Open-MX point-to-point messages (the
    /// paper's baseline; interacts with the NIC's coalescing strategy).
    #[default]
    Host,
    /// NIC-resident collectives ([`omx_core::offload`]): barrier always,
    /// bcast and allreduce when the payload fits the firmware buffer
    /// ([`omx_core::offload::OffloadConfig::max_payload`]). Ineligible
    /// collectives transparently fall back to the host path.
    NicOffload,
}

/// Result of one MPI job run.
#[derive(Debug, Clone)]
pub struct MpiRunReport {
    /// Job completion time (max over ranks), nanoseconds.
    pub elapsed_ns: u64,
    /// Per-rank finish times, nanoseconds.
    pub per_rank_finish_ns: Vec<u64>,
    /// Total wall time of compute phases across ranks.
    pub compute_wall_ns: u64,
    /// Total CPU time interrupts stole from compute phases.
    pub stolen_ns: u64,
    /// Wall latency of every completed program step, merged across ranks
    /// (source of the campaigns' p50/p99/p999 SLO summaries).
    pub op_latency: Histogram,
    /// Cluster-wide metrics (interrupts, wakeups, retransmits, …).
    pub metrics: ClusterMetrics,
    /// Windowed telemetry, when enabled via [`MpiWorld::enable_telemetry`].
    pub telemetry: Option<Telemetry>,
    /// Per-node NIC collective-offload engine counters (all zero unless the
    /// job ran with [`CollectiveExec::NicOffload`]).
    pub offload: Vec<omx_core::offload::OffloadCounters>,
}

/// A configured MPI job.
///
/// ```
/// use omx_core::system::ClusterConfig;
/// use omx_mpi::{MpiWorld, Op, WorldSpec};
///
/// let world = MpiWorld::new(
///     WorldSpec { ranks: 4, ranks_per_node: 2 },
///     ClusterConfig::default(),
/// );
/// let report = world.run(|_rank| vec![
///     Op::Compute(10_000),
///     Op::Allreduce { bytes: 64 },
/// ]);
/// assert_eq!(report.per_rank_finish_ns.len(), 4);
/// ```
pub struct MpiWorld {
    spec: WorldSpec,
    cluster: Cluster,
    exec: CollectiveExec,
    offload_max_payload: u32,
}

impl MpiWorld {
    /// Build a world on a cluster derived from `base` (node/endpoint counts
    /// are overwritten to fit the world).
    pub fn new(spec: WorldSpec, mut base: ClusterConfig) -> Self {
        base.nodes = spec.nodes();
        base.endpoints_per_node = spec.ranks_per_node;
        assert!(
            spec.ranks_per_node <= base.host.cores,
            "one rank per core maximum ({} ranks/node > {} cores)",
            spec.ranks_per_node,
            base.host.cores
        );
        let offload_max_payload = base.offload.max_payload;
        MpiWorld {
            spec,
            cluster: Cluster::new(base),
            exec: CollectiveExec::Host,
            offload_max_payload,
        }
    }

    /// Select where collectives execute (default: [`CollectiveExec::Host`]).
    pub fn with_collective_exec(mut self, exec: CollectiveExec) -> Self {
        self.exec = exec;
        self
    }

    /// The placement spec.
    pub fn spec(&self) -> WorldSpec {
        self.spec
    }

    /// Enable windowed telemetry on the underlying cluster; the collected
    /// [`Telemetry`] comes back in [`MpiRunReport::telemetry`]. Sampling
    /// runs off the engine tick and cannot change simulation results.
    pub fn enable_telemetry(&mut self, cfg: TelemetryConfig) {
        self.cluster.enable_telemetry(cfg);
    }

    /// Run an SPMD job: `program(rank)` builds each rank's op list.
    ///
    /// Returns the job report; panics if the job deadlocks (horizon is one
    /// simulated hour). The simulation stops the instant the last rank
    /// finishes; use [`MpiWorld::run_drained`] to instead drain to
    /// quiescence and assert the sim-sanitizer invariants.
    pub fn run(self, program: impl Fn(usize) -> Vec<Op>) -> MpiRunReport {
        self.launch(program, false).0
    }

    /// Like [`MpiWorld::run`], but the simulation drains to `QueueEmpty`
    /// after the last rank finishes (trailing acks, coalescing timers) and
    /// the sim-sanitizer invariants — exact byte conservation, duplicate
    /// detection, no stranded protocol state — are asserted at quiescence.
    ///
    /// Returns the job report plus the sanitizer's quiescence report.
    pub fn run_drained(
        self,
        program: impl Fn(usize) -> Vec<Op>,
    ) -> (MpiRunReport, omx_core::sanitizer::SanitizerReport) {
        let (report, sanitizer) = self.launch(program, true);
        (report, sanitizer.expect("drained run sanitizes"))
    }

    fn launch(
        mut self,
        program: impl Fn(usize) -> Vec<Op>,
        drain: bool,
    ) -> (MpiRunReport, Option<omx_core::sanitizer::SanitizerReport>) {
        let done = Arc::new(AtomicUsize::new(0));
        for rank in 0..self.spec.ranks {
            let mut actor = RankActor::new(rank, self.spec, program(rank), Arc::clone(&done))
                .with_exec(self.exec, self.offload_max_payload);
            if drain {
                actor = actor.draining();
            }
            self.cluster.add_actor(
                self.spec.node_of(rank),
                self.spec.ep_of(rank),
                Box::new(actor),
            );
        }
        // Both paths are `--sim-jobs`-eligible: drain runs promise no stop
        // (every epoch may run concurrently), while stop-when-done runs go
        // through the engine's global stop vote (rank-touching epochs are
        // dispatched in exact serial order so the run ends at the serial
        // stop ordinal). Output is byte-identical to the serial path
        // either way.
        let stop = if drain {
            self.cluster.run_drain(Time::from_secs(3_600))
        } else {
            self.cluster.run(Time::from_secs(3_600))
        };
        let expected = if drain {
            StopCondition::QueueEmpty
        } else {
            StopCondition::PredicateSatisfied
        };
        assert_eq!(
            stop,
            expected,
            "MPI job did not complete: {stop:?} at {} ({} events)",
            self.cluster.now(),
            self.cluster.events_processed(),
        );
        let sanitizer = if drain {
            let report = self.cluster.sanitize();
            let violations = report.all_violations();
            assert!(
                violations.is_empty(),
                "MPI job violated sim-sanitizer invariants at quiescence:\n  {}",
                violations.join("\n  ")
            );
            Some(report)
        } else {
            None
        };
        let mut per_rank = Vec::with_capacity(self.spec.ranks);
        let mut compute_wall = 0;
        let mut stolen = 0;
        let mut op_latency = Histogram::new();
        for rank in 0..self.spec.ranks {
            let actor = self
                .cluster
                .actor::<RankActor>(self.spec.node_of(rank), self.spec.ep_of(rank))
                .expect("rank actor present");
            per_rank.push(actor.finished_at().expect("rank finished").as_nanos());
            compute_wall += actor.compute_wall_ns();
            stolen += actor.stolen_ns();
            for &lat in actor.op_latency_ns() {
                op_latency.record(lat);
            }
        }
        let report = MpiRunReport {
            elapsed_ns: per_rank.iter().copied().max().unwrap_or(0),
            per_rank_finish_ns: per_rank,
            compute_wall_ns: compute_wall,
            stolen_ns: stolen,
            op_latency,
            metrics: self.cluster.metrics(),
            telemetry: self.cluster.take_telemetry(),
            offload: self.cluster.offload_counters(),
        };
        (report, sanitizer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ProgramBuilder;
    use omx_core::prelude::{CoalescingStrategy, IrqRouting};

    fn world(ranks: usize, rpn: usize) -> MpiWorld {
        MpiWorld::new(
            WorldSpec {
                ranks,
                ranks_per_node: rpn,
            },
            ClusterConfig::default(),
        )
    }

    /// The conservative parallel drain engine must be *byte-identical* to
    /// the serial engine — every report field, the full metrics tree, and
    /// the windowed telemetry stream — at any worker count, including one
    /// that doesn't divide the node count.
    #[test]
    fn parallel_drain_is_byte_identical_to_serial() {
        use omx_sim::json::ToJson;
        let program = |rank: usize| {
            ProgramBuilder::new()
                .op(Op::Compute(10_000 * (rank as u64 + 1)))
                .op(Op::Alltoall { bytes: 2_000 })
                .op(Op::Allreduce { bytes: 64 })
                .op(Op::Bcast {
                    root: 3,
                    bytes: 4096,
                })
                .build()
        };
        let run = |jobs: usize| {
            omx_sim::pool::with_sim_jobs(jobs, || {
                let mut w = world(16, 2);
                w.enable_telemetry(TelemetryConfig::default());
                let (report, san) = w.run_drained(program);
                format!(
                    "{}|{:?}|{}|{}|{}|{}|{}|{:?}",
                    report.elapsed_ns,
                    report.per_rank_finish_ns,
                    report.compute_wall_ns,
                    report.stolen_ns,
                    report.op_latency.to_json().render(),
                    report.metrics.to_json().render(),
                    report.telemetry.expect("telemetry enabled").to_jsonl(),
                    san.all_violations(),
                )
            })
        };
        let serial = run(1);
        for jobs in [2, 5, 8] {
            assert_eq!(serial, run(jobs), "divergence at --sim-jobs {jobs}");
        }
    }

    #[test]
    fn spec_mapping() {
        let s = WorldSpec::paper_16x2();
        assert_eq!(s.nodes(), 2);
        assert_eq!(s.node_of(0), 0);
        assert_eq!(s.node_of(8), 1);
        assert_eq!(s.ep_of(10), 2);
        assert!(s.same_node(0, 7));
        assert!(!s.same_node(7, 8));
    }

    #[test]
    fn pure_compute_job_finishes_at_compute_time() {
        let report = world(4, 2).run(|_| vec![Op::Compute(1_000_000)]);
        assert!(report.elapsed_ns >= 1_000_000);
        assert!(report.elapsed_ns < 1_200_000, "{}", report.elapsed_ns);
        assert_eq!(report.per_rank_finish_ns.len(), 4);
    }

    #[test]
    fn ping_pong_pair_via_ops() {
        let report = world(2, 1).run(|rank| {
            if rank == 0 {
                vec![
                    Op::Send {
                        peer: 1,
                        bytes: 64,
                        tag: 1,
                    },
                    Op::Recv { peer: 1, tag: 2 },
                ]
            } else {
                vec![
                    Op::Recv { peer: 0, tag: 1 },
                    Op::Send {
                        peer: 0,
                        bytes: 64,
                        tag: 2,
                    },
                ]
            }
        });
        assert!(report.elapsed_ns > 0);
        // Two small messages crossed the wire (plus acks).
        assert!(report.metrics.frames_carried >= 2);
    }

    #[test]
    fn barrier_synchronises_ranks() {
        // Rank 0 computes 5 ms; everyone then crosses a barrier: all finish
        // after the slowest rank.
        let report = world(8, 4).run(|rank| {
            let mut p = ProgramBuilder::new();
            if rank == 0 {
                p = p.op(Op::Compute(5_000_000));
            }
            p.op(Op::Barrier).build()
        });
        for (rank, finish) in report.per_rank_finish_ns.iter().enumerate() {
            assert!(
                *finish >= 5_000_000,
                "rank {rank} finished at {finish} before the barrier released"
            );
        }
    }

    #[test]
    fn allreduce_all_ranks_complete() {
        let report = world(16, 8).run(|_| {
            ProgramBuilder::new()
                .repeat(3, &[Op::Allreduce { bytes: 8 }])
                .build()
        });
        assert_eq!(report.per_rank_finish_ns.len(), 16);
    }

    #[test]
    fn alltoall_moves_the_expected_volume() {
        let bytes = 10_000u32;
        let report = world(4, 2).run(|_| vec![Op::Alltoall { bytes }]);
        // Inter-node pairs: ranks {0,1} x {2,3} = 8 directed pairs of 10 kB.
        // Intra-node traffic uses shared memory (not counted by the fabric).
        let inter = 8 * u64::from(bytes);
        let carried =
            report.metrics.nodes[0].nic.packets.get() + report.metrics.nodes[1].nic.packets.get();
        assert!(carried > 0);
        let payload: u64 = report.metrics.frames_carried; // frames, not bytes
        assert!(payload >= inter / 1500, "too few frames: {payload}");
    }

    #[test]
    fn bcast_and_reduce_complete_from_nonzero_root() {
        let report = world(8, 4).run(|_| {
            vec![
                Op::Bcast {
                    root: 3,
                    bytes: 4096,
                },
                Op::Reduce {
                    root: 5,
                    bytes: 4096,
                },
            ]
        });
        assert_eq!(report.per_rank_finish_ns.len(), 8);
    }

    #[test]
    fn alltoallv_with_asymmetric_sizes() {
        let report = world(4, 2).run(|_| {
            vec![Op::Alltoallv {
                bytes: vec![0, 100, 20_000, 300],
            }]
        });
        assert!(report.elapsed_ns > 0);
    }

    #[test]
    fn determinism_across_runs() {
        let run = || {
            world(16, 8).run(|rank| {
                ProgramBuilder::new()
                    .op(Op::Compute(10_000 * (rank as u64 + 1)))
                    .op(Op::Alltoall { bytes: 2_000 })
                    .op(Op::Allreduce { bytes: 64 })
                    .build()
            })
        };
        let a = run();
        let b = run();
        assert_eq!(a.elapsed_ns, b.elapsed_ns);
        assert_eq!(a.metrics.total_interrupts(), b.metrics.total_interrupts());
    }

    #[test]
    fn telemetry_records_windows_without_perturbing_results() {
        let program = |_: usize| vec![Op::Alltoall { bytes: 4_000 }];
        let (plain, _) = world(8, 2).run_drained(program);
        let mut w = world(8, 2);
        w.enable_telemetry(TelemetryConfig::default());
        let (sampled, _) = w.run_drained(program);

        // The tick is observation-only: identical job outcome.
        assert_eq!(plain.elapsed_ns, sampled.elapsed_ns);
        assert_eq!(
            plain.metrics.total_interrupts(),
            sampled.metrics.total_interrupts()
        );
        assert_eq!(plain.metrics.frames_carried, sampled.metrics.frames_carried);
        assert!(plain.telemetry.is_none());

        let tel = sampled.telemetry.expect("telemetry collected");
        assert!(tel.windows_recorded() >= 1);
        // Goodput windows over a node must sum to what was delivered there.
        let node0_goodput: u64 = tel.node_windows(0).map(|w| w.goodput_bytes).sum();
        assert!(node0_goodput > 0, "node 0 saw no goodput");
        // Per-op latency histogram feeds the SLO summaries.
        assert_eq!(sampled.op_latency.count(), 8); // one alltoall per rank
        assert!(sampled.op_latency.p99().is_some());
    }

    #[test]
    fn interrupt_storm_steals_compute_time() {
        // A compute-only rank on node 1 plus a heavy stream onto node 1:
        // the rank's compute phase must stretch when interrupts land on its
        // core. Use Fixed routing onto the rank's core to force the steal.
        let mut cfg = ClusterConfig::default();
        cfg.host.routing = IrqRouting::Fixed(0);
        cfg.nic.strategy = CoalescingStrategy::Disabled;
        let spec = WorldSpec {
            ranks: 4,
            ranks_per_node: 2,
        };
        let report = MpiWorld::new(spec, cfg).run(|rank| {
            if rank == 0 {
                // Rank 0 (node 0, core 0) sends lots of small messages to
                // rank 2 (node 1, core 0).
                ProgramBuilder::new()
                    .repeat(
                        200,
                        &[Op::Send {
                            peer: 2,
                            bytes: 128,
                            tag: 9,
                        }],
                    )
                    .build()
            } else if rank == 2 {
                // Rank 2 computes while its core takes all interrupts, then
                // drains the messages.
                let mut p = ProgramBuilder::new().op(Op::Compute(500_000));
                for _ in 0..200 {
                    p = p.op(Op::Recv { peer: 0, tag: 9 });
                }
                p.build()
            } else {
                vec![]
            }
        });
        assert!(
            report.stolen_ns > 50_000,
            "expected visible steal, got {}",
            report.stolen_ns
        );
    }
}
