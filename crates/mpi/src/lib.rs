//! # omx-mpi — a mini-MPI over Open-MX endpoints
//!
//! The NAS Parallel Benchmarks of the paper run over Open MPI on top of
//! Open-MX. This crate provides the subset of MPI they exercise:
//!
//! * a **world** of ranks mapped block-wise onto nodes ([`WorldSpec`]:
//!   ranks 0..R/2 on node 0, the rest on node 1 for the paper's
//!   16-rank / 2-node runs),
//! * **point-to-point** send/recv with tag matching,
//! * **collectives** — barrier (dissemination), broadcast and reduce
//!   (binomial), allreduce (recursive doubling), allgather, alltoall and
//!   alltoallv (pairwise XOR exchange) — decomposed into the same wire
//!   messages a real MPI would produce,
//! * a per-rank **program executor** ([`ops::Op`], [`executor::RankActor`]):
//!   each rank runs a sequential op list; compute phases account for CPU
//!   time stolen by interrupt handlers on their core, which is exactly the
//!   coupling the paper's Table IV measures.
//!
//! [`world::MpiWorld`] wires programs into an
//! [`omx_core::Cluster`] and reports completion times and metrics.

#![warn(missing_docs)]

pub mod collectives;
pub mod executor;
pub mod ops;
pub mod world;

pub use executor::RankActor;
pub use ops::Op;
pub use world::{CollectiveExec, MpiRunReport, MpiWorld, WorldSpec};
