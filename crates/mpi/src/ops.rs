//! The rank-program operation set.
//!
//! NAS communication skeletons are sequences of these operations, executed
//! in lockstep program order on every rank (collectives must appear at the
//! same op index everywhere, like real MPI call sites).

/// One step of a rank program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    /// Local computation for this many nanoseconds of *CPU time* — wall
    /// time extends when interrupt handlers steal the core.
    Compute(u64),
    /// Blocking send of `bytes` to `peer` with `tag`.
    Send {
        /// Destination rank.
        peer: usize,
        /// Message size in bytes.
        bytes: u32,
        /// Message tag (matched exactly, together with the op index).
        tag: u32,
    },
    /// Blocking receive from `peer` with `tag`.
    Recv {
        /// Source rank.
        peer: usize,
        /// Message tag.
        tag: u32,
    },
    /// Simultaneous exchange with `peer` (send and receive `bytes`).
    SendRecv {
        /// Partner rank.
        peer: usize,
        /// Bytes sent (and expected) in each direction.
        bytes: u32,
        /// Message tag.
        tag: u32,
    },
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast of `bytes` from `root`.
    Bcast {
        /// Root rank.
        root: usize,
        /// Payload size.
        bytes: u32,
    },
    /// Binomial-tree reduction of `bytes` to `root`.
    Reduce {
        /// Root rank.
        root: usize,
        /// Payload size.
        bytes: u32,
    },
    /// Recursive-doubling allreduce of `bytes`.
    Allreduce {
        /// Payload size.
        bytes: u32,
    },
    /// Recursive-doubling allgather: each rank contributes `bytes`.
    Allgather {
        /// Per-rank contribution.
        bytes: u32,
    },
    /// Pairwise-exchange alltoall: `bytes` to every other rank.
    Alltoall {
        /// Bytes sent to each peer.
        bytes: u32,
    },
    /// Pairwise-exchange alltoallv: `bytes[d]` to destination rank `d`
    /// (entry for self is ignored).
    Alltoallv {
        /// Bytes sent to each rank, indexed by destination.
        bytes: Vec<u32>,
    },
}

impl Op {
    /// Total bytes this op sends from one rank (for traffic accounting).
    pub fn bytes_sent(&self, ranks: usize) -> u64 {
        match self {
            Op::Compute(_) | Op::Recv { .. } => 0,
            Op::Send { bytes, .. } | Op::SendRecv { bytes, .. } => u64::from(*bytes),
            Op::Barrier => {
                // log2(P) rounds of an 8-byte token.
                8 * ranks.next_power_of_two().trailing_zeros() as u64
            }
            Op::Bcast { bytes, .. } | Op::Reduce { bytes, .. } => u64::from(*bytes),
            Op::Allreduce { bytes } => {
                u64::from(*bytes) * ranks.next_power_of_two().trailing_zeros() as u64
            }
            Op::Allgather { bytes } => u64::from(*bytes) * (ranks.saturating_sub(1)) as u64,
            Op::Alltoall { bytes } => u64::from(*bytes) * (ranks.saturating_sub(1)) as u64,
            Op::Alltoallv { bytes } => bytes.iter().map(|b| u64::from(*b)).sum(),
        }
    }
}

/// Convenience builder for rank programs.
#[derive(Debug, Default, Clone)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
}

impl ProgramBuilder {
    /// Start an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append one op.
    pub fn op(mut self, op: Op) -> Self {
        self.ops.push(op);
        self
    }

    /// Append `n` repetitions of a block of ops.
    pub fn repeat(mut self, n: usize, block: &[Op]) -> Self {
        for _ in 0..n {
            self.ops.extend_from_slice(block);
        }
        self
    }

    /// Finish.
    pub fn build(self) -> Vec<Op> {
        self.ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_accounting() {
        assert_eq!(Op::Compute(10).bytes_sent(16), 0);
        assert_eq!(
            Op::Send {
                peer: 1,
                bytes: 100,
                tag: 0
            }
            .bytes_sent(16),
            100
        );
        assert_eq!(Op::Allreduce { bytes: 8 }.bytes_sent(16), 32); // 4 rounds
        assert_eq!(Op::Alltoall { bytes: 10 }.bytes_sent(16), 150);
        assert_eq!(
            Op::Alltoallv {
                bytes: vec![1, 2, 3]
            }
            .bytes_sent(16),
            6
        );
        assert_eq!(Op::Barrier.bytes_sent(16), 32);
    }

    #[test]
    fn builder_repeats_blocks() {
        let prog = ProgramBuilder::new()
            .op(Op::Barrier)
            .repeat(3, &[Op::Compute(5), Op::Allreduce { bytes: 8 }])
            .build();
        assert_eq!(prog.len(), 7);
        assert_eq!(prog[1], Op::Compute(5));
        assert_eq!(prog[6], Op::Allreduce { bytes: 8 });
    }
}
