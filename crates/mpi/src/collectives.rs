//! Collective decomposition into point-to-point rounds.
//!
//! Every collective is expressed as a sequence of *rounds*; each round tells
//! a rank whether to send, receive, or exchange with one peer. Rounds are
//! synchronised implicitly by message matching (a rank cannot finish round
//! `k` before its round-`k` message arrives), exactly like the MPI
//! implementations these algorithms come from.

/// What one rank does in one round of a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoundAction {
    /// Exchange `send_bytes`/`recv_bytes` with `peer` simultaneously.
    Exchange {
        /// Partner rank.
        peer: usize,
        /// Bytes sent to the partner.
        send_bytes: u32,
        /// Bytes expected from the partner.
        recv_bytes: u32,
    },
    /// Send only.
    Send {
        /// Destination rank.
        peer: usize,
        /// Payload.
        bytes: u32,
    },
    /// Receive only.
    Recv {
        /// Source rank.
        peer: usize,
    },
    /// Send to one rank while receiving from a *different* rank (the
    /// dissemination/ring pattern non-power-of-two worlds need; a
    /// power-of-two exchange is the special case `to == from`).
    SendRecv {
        /// Destination rank.
        to: usize,
        /// Source rank.
        from: usize,
        /// Bytes sent (the reverse volume is the sender's own entry).
        bytes: u32,
    },
    /// Idle this round (still advances to the next round).
    Idle,
}

fn log2_ceil(p: usize) -> u32 {
    p.next_power_of_two().trailing_zeros()
}

/// Barrier. Power-of-two worlds keep the pairwise-exchange schedule the
/// paper's runs used (round `k` swaps a token with rank `^ 2^k`); any other
/// world size uses the dissemination barrier (round `k` sends to
/// `(rank + 2^k) mod P` while receiving from `(rank - 2^k) mod P`), the
/// same `⌈log2 P⌉` round count.
pub fn barrier_round(rank: usize, ranks: usize, round: u32) -> Option<RoundAction> {
    if ranks == 1 || round >= log2_ceil(ranks) {
        return None;
    }
    if ranks.is_power_of_two() {
        let peer = rank ^ (1usize << round);
        return Some(RoundAction::Exchange {
            peer,
            send_bytes: 8,
            recv_bytes: 8,
        });
    }
    let dist = 1usize << round;
    Some(RoundAction::SendRecv {
        to: (rank + dist) % ranks,
        from: (rank + ranks - dist) % ranks,
        bytes: 8,
    })
}

/// Binomial broadcast: in round `k`, ranks `rel < 2^k` (which already hold
/// the data) send to `rel + 2^k`, root-relative.
pub fn bcast_round(
    rank: usize,
    ranks: usize,
    root: usize,
    bytes: u32,
    round: u32,
) -> Option<RoundAction> {
    let rounds = log2_ceil(ranks);
    if round >= rounds {
        return None;
    }
    // Work in root-relative space.
    let rel = (rank + ranks - root) % ranks;
    let dist = 1usize << round;
    if rel < dist {
        let peer_rel = rel + dist;
        if peer_rel < ranks {
            return Some(RoundAction::Send {
                peer: (peer_rel + root) % ranks,
                bytes,
            });
        }
        Some(RoundAction::Idle)
    } else if rel < 2 * dist {
        Some(RoundAction::Recv {
            peer: ((rel - dist) + root) % ranks,
        })
    } else {
        Some(RoundAction::Idle)
    }
}

/// Binomial reduce: the mirror image of broadcast.
pub fn reduce_round(
    rank: usize,
    ranks: usize,
    root: usize,
    bytes: u32,
    round: u32,
) -> Option<RoundAction> {
    let rounds = log2_ceil(ranks);
    if round >= rounds {
        return None;
    }
    let rel = (rank + ranks - root) % ranks;
    let dist = 1usize << round;
    if rel.is_multiple_of(2 * dist) {
        let peer_rel = rel + dist;
        if peer_rel < ranks {
            return Some(RoundAction::Recv {
                peer: (peer_rel + root) % ranks,
            });
        }
        Some(RoundAction::Idle)
    } else if rel % (2 * dist) == dist {
        Some(RoundAction::Send {
            peer: ((rel - dist) + root) % ranks,
            bytes,
        })
    } else {
        Some(RoundAction::Idle)
    }
}

/// Allreduce. Power-of-two worlds keep recursive doubling (`⌈log2 P⌉`
/// rounds, full payload each round); any other world size composes the
/// binomial [`reduce_round`] to rank 0 with the binomial [`bcast_round`]
/// from rank 0 (`2·⌈log2 P⌉` rounds), which handles every `P`.
pub fn allreduce_round(rank: usize, ranks: usize, bytes: u32, round: u32) -> Option<RoundAction> {
    if ranks.is_power_of_two() {
        if round >= log2_ceil(ranks) {
            return None;
        }
        let peer = rank ^ (1usize << round);
        return Some(RoundAction::Exchange {
            peer,
            send_bytes: bytes,
            recv_bytes: bytes,
        });
    }
    let rounds = log2_ceil(ranks);
    if round < rounds {
        reduce_round(rank, ranks, 0, bytes, round)
    } else if round < 2 * rounds {
        bcast_round(rank, ranks, 0, bytes, round - rounds)
    } else {
        None
    }
}

/// Allgather. Power-of-two worlds keep recursive doubling (exchanged
/// volume doubles each round); any other world size uses the ring: `P - 1`
/// rounds, each passing one `bytes`-sized block to `(rank + 1) mod P` while
/// receiving the next block from `(rank - 1) mod P`.
pub fn allgather_round(rank: usize, ranks: usize, bytes: u32, round: u32) -> Option<RoundAction> {
    if ranks.is_power_of_two() {
        if round >= log2_ceil(ranks) {
            return None;
        }
        let peer = rank ^ (1usize << round);
        let vol = bytes.saturating_mul(1 << round);
        return Some(RoundAction::Exchange {
            peer,
            send_bytes: vol,
            recv_bytes: vol,
        });
    }
    if round as usize >= ranks - 1 {
        return None;
    }
    Some(RoundAction::SendRecv {
        to: (rank + 1) % ranks,
        from: (rank + ranks - 1) % ranks,
        bytes,
    })
}

/// Alltoall: `P - 1` rounds, one distinct peer per round. Power-of-two
/// worlds keep the XOR pairing (round `k ≥ 1` exchanges with `rank ^ k`);
/// any other world size shifts modularly (round `k` sends to
/// `(rank + k) mod P` while receiving from `(rank - k) mod P`).
pub fn alltoall_round(rank: usize, ranks: usize, bytes: u32, round: u32) -> Option<RoundAction> {
    let r = round as usize + 1;
    if r >= ranks {
        return None;
    }
    if ranks.is_power_of_two() {
        let peer = rank ^ r;
        return Some(RoundAction::Exchange {
            peer,
            send_bytes: bytes,
            recv_bytes: bytes,
        });
    }
    Some(RoundAction::SendRecv {
        to: (rank + r) % ranks,
        from: (rank + ranks - r) % ranks,
        bytes,
    })
}

/// Alltoallv with per-destination sizes: the same peer schedule as
/// [`alltoall_round`], sending `bytes[peer]` each round (the reverse size
/// is the peer's own entry for us, looked up on its side).
pub fn alltoallv_round(
    rank: usize,
    ranks: usize,
    bytes: &[u32],
    round: u32,
) -> Option<RoundAction> {
    assert_eq!(bytes.len(), ranks, "one size per destination");
    let r = round as usize + 1;
    if r >= ranks {
        return None;
    }
    if ranks.is_power_of_two() {
        let peer = rank ^ r;
        return Some(RoundAction::Exchange {
            peer,
            send_bytes: bytes[peer],
            recv_bytes: 0,
        });
    }
    let to = (rank + r) % ranks;
    Some(RoundAction::SendRecv {
        to,
        from: (rank + ranks - r) % ranks,
        bytes: bytes[to],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn barrier_has_log_rounds() {
        assert_eq!(barrier_round(0, 16, 4), None);
        assert!(barrier_round(0, 16, 3).is_some());
        match barrier_round(3, 16, 1).unwrap() {
            RoundAction::Exchange { peer, .. } => assert_eq!(peer, 1),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn bcast_reaches_everyone_exactly_once() {
        let ranks = 16;
        for root in [0usize, 5] {
            let mut has_data: HashSet<usize> = HashSet::from([root]);
            for round in 0..4 {
                let mut received = Vec::new();
                for r in 0..ranks {
                    match bcast_round(r, ranks, root, 100, round) {
                        Some(RoundAction::Send { peer, .. }) => {
                            assert!(
                                has_data.contains(&r),
                                "round {round}: rank {r} sends without data (root {root})"
                            );
                            received.push(peer);
                        }
                        Some(RoundAction::Recv { peer }) => {
                            assert!(has_data.contains(&peer));
                        }
                        _ => {}
                    }
                }
                for p in received {
                    assert!(has_data.insert(p), "rank {p} received twice");
                }
            }
            assert_eq!(has_data.len(), ranks, "root {root}");
        }
    }

    #[test]
    fn bcast_send_recv_pairs_are_consistent() {
        let ranks = 16;
        for root in 0..ranks {
            for round in 0..4 {
                for r in 0..ranks {
                    if let Some(RoundAction::Send { peer, .. }) =
                        bcast_round(r, ranks, root, 1, round)
                    {
                        match bcast_round(peer, ranks, root, 1, round) {
                            Some(RoundAction::Recv { peer: from }) => assert_eq!(from, r),
                            other => panic!(
                                "rank {peer} should recv from {r} in round {round} (root {root}), got {other:?}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn reduce_send_recv_pairs_are_consistent() {
        let ranks = 16;
        for root in 0..ranks {
            for round in 0..4 {
                for r in 0..ranks {
                    if let Some(RoundAction::Send { peer, .. }) =
                        reduce_round(r, ranks, root, 1, round)
                    {
                        match reduce_round(peer, ranks, root, 1, round) {
                            Some(RoundAction::Recv { peer: from }) => assert_eq!(from, r),
                            other => panic!(
                                "rank {peer} should recv from {r} in round {round} (root {root}), got {other:?}"
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn allreduce_partners_are_symmetric() {
        let ranks = 16;
        for round in 0..4 {
            for r in 0..ranks {
                let Some(RoundAction::Exchange { peer, .. }) = allreduce_round(r, ranks, 8, round)
                else {
                    panic!("round exists");
                };
                let Some(RoundAction::Exchange { peer: back, .. }) =
                    allreduce_round(peer, ranks, 8, round)
                else {
                    panic!("round exists");
                };
                assert_eq!(back, r);
            }
        }
        assert_eq!(allreduce_round(0, 16, 8, 4), None);
    }

    #[test]
    fn alltoall_visits_every_peer_once() {
        let ranks = 16;
        for r in 0..ranks {
            let mut seen = HashSet::new();
            let mut round = 0;
            while let Some(RoundAction::Exchange { peer, .. }) = alltoall_round(r, ranks, 1, round)
            {
                assert!(seen.insert(peer));
                assert_ne!(peer, r);
                round += 1;
            }
            assert_eq!(seen.len(), ranks - 1);
        }
    }

    #[test]
    fn allgather_volume_doubles() {
        let ranks = 8;
        let mut total = 0u32;
        for round in 0..3 {
            if let Some(RoundAction::Exchange { send_bytes, .. }) =
                allgather_round(0, ranks, 100, round)
            {
                total += send_bytes;
            }
        }
        assert_eq!(total, 700, "100 + 200 + 400");
    }

    #[test]
    fn alltoallv_uses_destination_sizes() {
        let sizes: Vec<u32> = (0..16).collect();
        let Some(RoundAction::Exchange {
            peer, send_bytes, ..
        }) = alltoallv_round(2, 16, &sizes, 0)
        else {
            panic!()
        };
        assert_eq!(peer, 3);
        assert_eq!(send_bytes, 3);
    }
}
