//! The per-rank program executor.
//!
//! [`RankActor`] interprets a sequential [`Op`] list on top of an Open-MX
//! endpoint. Collectives are unrolled into rounds via [`crate::collectives`]
//! at execution time; compute phases account for interrupt-stolen CPU time
//! on the rank's core by re-arming their completion timer until the wall
//! window contains the requested CPU time plus whatever interrupts stole.

use crate::collectives::{
    allgather_round, allreduce_round, alltoall_round, alltoallv_round, barrier_round, bcast_round,
    reduce_round, RoundAction,
};
use crate::ops::Op;
use crate::world::{CollectiveExec, WorldSpec};
use omx_core::offload::{CollOp, OffloadCollDesc};
use omx_core::system::{Actor, ActorCtx, RecvCompletion};
use omx_sim::{Time, TimeDelta};
use std::any::Any;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Tag-space layout: collectives use bit 63; user point-to-point messages
/// encode `(tag << 16) | src`.
fn p2p_match(tag: u32, src: usize) -> u64 {
    (u64::from(tag) << 16) | src as u64
}

fn coll_match(seq: u64, round: u32, src: usize) -> u64 {
    (1u64 << 63) | (seq << 24) | (u64::from(round) << 8) | src as u64
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Wait {
    None,
    /// Waiting for send and/or receive completions of the current step.
    Pending {
        sends: u8,
        recvs: u8,
    },
    /// Waiting for a compute timer.
    Compute,
    /// Waiting for the NIC offload engine's single completion interrupt
    /// for the collective with this engine-assigned sequence number.
    Offload(u32),
}

/// One MPI rank running a program.
pub struct RankActor {
    rank: usize,
    world: WorldSpec,
    program: Vec<Op>,
    pc: usize,
    round: u32,
    coll_seq: u64,
    exec: CollectiveExec,
    /// Firmware payload cap: bcast/allreduce above this fall back to host.
    offload_max_payload: u32,
    /// Next sequence number the NIC offload engine will assign. Mirrors
    /// the engine's per-slot watermark — every rank posts the same
    /// collective sequence, so the mirror never drifts.
    offload_seq: u32,
    wait: Wait,
    // Compute-phase accounting.
    compute_start: Time,
    compute_cpu_ns: u64,
    stolen_base: u64,
    // Results.
    finished_at: Option<Time>,
    done_counter: Arc<AtomicUsize>,
    total_ranks: usize,
    /// When false, the last rank to finish does NOT stop the simulation;
    /// the run drains to `QueueEmpty` so quiescence invariants can be
    /// asserted (see [`crate::MpiWorld::run_drained`]).
    stop_when_done: bool,
    /// Wall time spent in compute phases (including stolen time).
    compute_wall_ns: u64,
    /// CPU time stolen by interrupts during compute phases.
    stolen_ns: u64,
    /// When the program step currently executing started.
    op_start: Time,
    /// Wall latency of each completed program step, in program order.
    op_latency_ns: Vec<u64>,
}

impl RankActor {
    /// Create the actor for `rank` running `program`.
    ///
    /// `done_counter` is shared by all ranks of the job; the last rank to
    /// finish stops the simulation.
    pub fn new(
        rank: usize,
        world: WorldSpec,
        program: Vec<Op>,
        done_counter: Arc<AtomicUsize>,
    ) -> Self {
        RankActor {
            rank,
            world,
            total_ranks: world.ranks,
            program,
            pc: 0,
            round: 0,
            coll_seq: 0,
            exec: CollectiveExec::Host,
            offload_max_payload: 0,
            offload_seq: 0,
            wait: Wait::None,
            compute_start: Time::ZERO,
            compute_cpu_ns: 0,
            stolen_base: 0,
            finished_at: None,
            done_counter,
            stop_when_done: true,
            compute_wall_ns: 0,
            stolen_ns: 0,
            op_start: Time::ZERO,
            op_latency_ns: Vec::new(),
        }
    }

    /// Select the collective execution mode (default: host) and the
    /// firmware payload cap gating bcast/allreduce offload eligibility.
    pub fn with_exec(mut self, exec: CollectiveExec, offload_max_payload: u32) -> Self {
        self.exec = exec;
        self.offload_max_payload = offload_max_payload;
        self
    }

    /// Disable the stop-on-last-rank behaviour: the simulation keeps
    /// running after every rank finished, draining acks and timers to
    /// `QueueEmpty`.
    pub fn draining(mut self) -> Self {
        self.stop_when_done = false;
        self
    }

    /// This rank's finish time, once the program completed.
    pub fn finished_at(&self) -> Option<Time> {
        self.finished_at
    }

    /// Wall nanoseconds spent in compute phases.
    pub fn compute_wall_ns(&self) -> u64 {
        self.compute_wall_ns
    }

    /// Nanoseconds interrupts stole from this rank's compute phases.
    pub fn stolen_ns(&self) -> u64 {
        self.stolen_ns
    }

    /// Wall latency of each completed program step, in program order —
    /// collectives measure round-trip completion, compute steps measure
    /// their (possibly interrupt-stretched) wall time. The SLO summaries
    /// in the campaign reports aggregate these across ranks.
    pub fn op_latency_ns(&self) -> &[u64] {
        &self.op_latency_ns
    }

    fn post_exchange(
        &mut self,
        ctx: &mut ActorCtx,
        peer: usize,
        send_bytes: Option<u32>,
        expect_recv: bool,
        match_out: u64,
        match_in: u64,
    ) {
        let mut sends = 0;
        let mut recvs = 0;
        if expect_recv {
            ctx.post_recv(match_in, !0, 0);
            recvs = 1;
        }
        if let Some(bytes) = send_bytes {
            ctx.post_send(self.world.addr(peer), bytes, match_out, 0);
            sends = 1;
        }
        self.wait = Wait::Pending { sends, recvs };
    }

    /// Run ops until one blocks.
    fn advance(&mut self, ctx: &mut ActorCtx) {
        loop {
            debug_assert_eq!(self.wait, Wait::None);
            let Some(op) = self.program.get(self.pc).cloned() else {
                self.finish(ctx);
                return;
            };
            match op {
                Op::Compute(ns) => {
                    if ns == 0 {
                        self.step_done(ctx.now());
                        continue;
                    }
                    self.compute_start = ctx.now();
                    self.compute_cpu_ns = ns;
                    self.stolen_base = ctx.core_irq_busy_ns();
                    self.wait = Wait::Compute;
                    ctx.set_timer(ctx.now() + TimeDelta::from_nanos(ns as i64), 0);
                    return;
                }
                Op::Send { peer, bytes, tag } => {
                    let m = p2p_match(tag, self.rank);
                    self.post_exchange(ctx, peer, Some(bytes), false, m, 0);
                    return;
                }
                Op::Recv { peer, tag } => {
                    let m = p2p_match(tag, peer);
                    self.post_exchange(ctx, peer, None, true, 0, m);
                    return;
                }
                Op::SendRecv { peer, bytes, tag } => {
                    let m_out = p2p_match(tag, self.rank);
                    let m_in = p2p_match(tag, peer);
                    self.post_exchange(ctx, peer, Some(bytes), true, m_out, m_in);
                    return;
                }
                Op::Barrier | Op::Bcast { .. } | Op::Allreduce { .. }
                    if self.offload_desc(&op).is_some() =>
                {
                    let desc = self.offload_desc(&op).expect("guard checked eligibility");
                    self.post_offload(ctx, desc);
                    return;
                }
                Op::Barrier => {
                    if self.run_collective_round(ctx, &op) {
                        return;
                    }
                }
                Op::Bcast { .. }
                | Op::Reduce { .. }
                | Op::Allreduce { .. }
                | Op::Allgather { .. }
                | Op::Alltoall { .. }
                | Op::Alltoallv { .. } => {
                    if self.run_collective_round(ctx, &op) {
                        return;
                    }
                }
            }
        }
    }

    /// The NIC-offload descriptor for `op`, when the job runs with
    /// [`CollectiveExec::NicOffload`] and the operation is eligible:
    /// barrier always, bcast/allreduce up to the firmware payload cap.
    /// Eligibility is a pure function of the op itself, so every rank
    /// makes the same host-vs-NIC decision for the same program step.
    fn offload_desc(&self, op: &Op) -> Option<OffloadCollDesc> {
        if self.exec != CollectiveExec::NicOffload {
            return None;
        }
        let (coll, payload) = match *op {
            Op::Barrier => (CollOp::Barrier, 0),
            Op::Bcast { root, bytes } if bytes <= self.offload_max_payload => {
                (CollOp::Bcast { root: root as u32 }, bytes)
            }
            Op::Allreduce { bytes } if bytes <= self.offload_max_payload => {
                (CollOp::Allreduce, bytes)
            }
            _ => return None,
        };
        Some(OffloadCollDesc {
            op: coll,
            rank: self.rank as u32,
            ranks: self.world.ranks as u32,
            ranks_per_node: self.world.ranks_per_node as u32,
            payload,
        })
    }

    /// Hand a collective to the NIC and block until its single completion
    /// interrupt. The engine assigns sequence numbers from a per-rank
    /// watermark; `offload_seq` mirrors it for the completion check.
    fn post_offload(&mut self, ctx: &mut ActorCtx, desc: OffloadCollDesc) {
        let seq = self.offload_seq;
        self.offload_seq += 1;
        self.wait = Wait::Offload(seq);
        ctx.post_offload_collective(desc);
    }

    /// Execute the current collective round. Returns true when blocked
    /// waiting for completions (false = the collective finished and `pc`
    /// advanced).
    fn run_collective_round(&mut self, ctx: &mut ActorCtx, op: &Op) -> bool {
        loop {
            let action = match op {
                Op::Barrier => barrier_round(self.rank, self.world.ranks, self.round),
                Op::Bcast { root, bytes } => {
                    bcast_round(self.rank, self.world.ranks, *root, *bytes, self.round)
                }
                Op::Reduce { root, bytes } => {
                    reduce_round(self.rank, self.world.ranks, *root, *bytes, self.round)
                }
                Op::Allreduce { bytes } => {
                    allreduce_round(self.rank, self.world.ranks, *bytes, self.round)
                }
                Op::Allgather { bytes } => {
                    allgather_round(self.rank, self.world.ranks, *bytes, self.round)
                }
                Op::Alltoall { bytes } => {
                    alltoall_round(self.rank, self.world.ranks, *bytes, self.round)
                }
                Op::Alltoallv { bytes } => {
                    alltoallv_round(self.rank, self.world.ranks, bytes, self.round)
                }
                _ => unreachable!("not a collective"),
            };
            let seq = self.coll_seq;
            let round = self.round;
            match action {
                None => {
                    self.coll_seq += 1;
                    self.step_done(ctx.now());
                    return false;
                }
                Some(RoundAction::Idle) => {
                    self.round += 1;
                    continue;
                }
                Some(RoundAction::Send { peer, bytes }) => {
                    let m_out = coll_match(seq, round, self.rank);
                    self.post_exchange(ctx, peer, Some(bytes), false, m_out, 0);
                    return true;
                }
                Some(RoundAction::Recv { peer }) => {
                    let m_in = coll_match(seq, round, peer);
                    self.post_exchange(ctx, peer, None, true, 0, m_in);
                    return true;
                }
                Some(RoundAction::SendRecv { to, from, bytes }) => {
                    let m_out = coll_match(seq, round, self.rank);
                    let m_in = coll_match(seq, round, from);
                    self.post_exchange(ctx, to, Some(bytes), true, m_out, m_in);
                    return true;
                }
                Some(RoundAction::Exchange {
                    peer, send_bytes, ..
                }) => {
                    let m_out = coll_match(seq, round, self.rank);
                    let m_in = coll_match(seq, round, peer);
                    self.post_exchange(ctx, peer, Some(send_bytes), true, m_out, m_in);
                    return true;
                }
            }
        }
    }

    fn step_done(&mut self, now: Time) {
        // A collective advances round-by-round; point-to-point and compute
        // advance the program counter directly.
        self.op_latency_ns
            .push(now.saturating_since(self.op_start).as_nanos().max(0) as u64);
        self.op_start = now;
        self.pc += 1;
        self.round = 0;
    }

    /// One round of the current collective finished.
    fn round_done(&mut self, ctx: &mut ActorCtx) {
        let op = self.program[self.pc].clone();
        let is_collective = matches!(
            op,
            Op::Barrier
                | Op::Bcast { .. }
                | Op::Reduce { .. }
                | Op::Allreduce { .. }
                | Op::Allgather { .. }
                | Op::Alltoall { .. }
                | Op::Alltoallv { .. }
        );
        if is_collective {
            self.round += 1;
            if self.run_collective_round(ctx, &op) {
                return;
            }
            self.advance(ctx);
        } else {
            self.step_done(ctx.now());
            self.advance(ctx);
        }
    }

    fn completion(&mut self, ctx: &mut ActorCtx, was_send: bool) {
        let Wait::Pending {
            mut sends,
            mut recvs,
        } = self.wait
        else {
            panic!(
                "rank {}: unexpected completion (send={was_send}) in state {:?}",
                self.rank, self.wait
            );
        };
        if was_send {
            debug_assert!(sends > 0, "rank {}: stray send completion", self.rank);
            sends -= 1;
        } else {
            debug_assert!(recvs > 0, "rank {}: stray recv completion", self.rank);
            recvs -= 1;
        }
        if sends == 0 && recvs == 0 {
            self.wait = Wait::None;
            self.round_done(ctx);
        } else {
            self.wait = Wait::Pending { sends, recvs };
        }
    }

    fn finish(&mut self, ctx: &mut ActorCtx) {
        if self.finished_at.is_some() {
            return;
        }
        self.finished_at = Some(ctx.now());
        let done = self.done_counter.fetch_add(1, Ordering::Relaxed) + 1;
        if done == self.total_ranks && self.stop_when_done {
            ctx.stop();
        }
    }
}

impl Actor for RankActor {
    /// Stop-capable only in stop-when-done mode. In drain mode the shared
    /// `done_counter` still increments from concurrent epochs, but its
    /// ordering is unobservable: with `stop_when_done == false` the
    /// `done == total_ranks` branch never runs, so declaring `false` here
    /// keeps drained MPI worlds eligible for parallel dispatch. In
    /// stop-when-done mode the engine serializes every epoch that touches
    /// a rank, which makes the counter's increment order — and thus the
    /// stop ordinal — exactly the serial one.
    fn may_stop(&self) -> bool {
        self.stop_when_done
    }

    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.advance(ctx);
    }

    fn on_send_complete(&mut self, ctx: &mut ActorCtx, _handle: u64) {
        self.completion(ctx, true);
    }

    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, _c: RecvCompletion) {
        self.completion(ctx, false);
    }

    fn on_offload_complete(&mut self, ctx: &mut ActorCtx, seq: u32) {
        debug_assert_eq!(
            self.wait,
            Wait::Offload(seq),
            "rank {}: stray offload completion",
            self.rank
        );
        self.wait = Wait::None;
        self.step_done(ctx.now());
        self.advance(ctx);
    }

    fn on_timer(&mut self, ctx: &mut ActorCtx, _token: u64) {
        debug_assert_eq!(self.wait, Wait::Compute);
        // The phase needs `compute_cpu_ns` of CPU; interrupts stole some of
        // the window. Extend until the window is large enough.
        let stolen = ctx.core_irq_busy_ns() - self.stolen_base;
        let needed = TimeDelta::from_nanos((self.compute_cpu_ns + stolen) as i64);
        let elapsed = ctx.now() - self.compute_start;
        if elapsed < needed {
            ctx.set_timer(self.compute_start + needed, 0);
            return;
        }
        self.compute_wall_ns += elapsed.as_nanos().max(0) as u64;
        self.stolen_ns += stolen;
        self.wait = Wait::None;
        self.step_done(ctx.now());
        self.advance(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
}
