//! Cross-crate integration tests: full-cluster message delivery across every
//! size class and strategy, determinism, and failure recovery.

use openmx_repro::core::prelude::*;
use openmx_repro::core::system::{Actor, ActorCtx, RecvCompletion};
use openmx_repro::core::wire::EndpointAddr;
use openmx_repro::fabric::DisturbanceConfig;
use openmx_repro::sim::json::ToJson;
use openmx_repro::sim::StopCondition;
use std::any::Any;

/// Sends `count` messages of `len` bytes and stops when the receiver got all.
struct Sender {
    dst: EndpointAddr,
    len: u32,
    count: u32,
    sent: u32,
}

impl Actor for Sender {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        self.sent = 1;
        ctx.post_send(self.dst, self.len, 0, 0);
    }
    fn on_send_complete(&mut self, ctx: &mut ActorCtx, _h: u64) {
        if self.sent < self.count {
            self.sent += 1;
            ctx.post_send(self.dst, self.len, u64::from(self.sent - 1), 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

struct Receiver {
    expect: u32,
    got: u32,
    bytes: u64,
}

impl Actor for Receiver {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        for i in 0..4u64 {
            ctx.post_recv(0, 0, i);
        }
    }
    fn on_recv_complete(&mut self, ctx: &mut ActorCtx, c: RecvCompletion) {
        self.got += 1;
        self.bytes += u64::from(c.len);
        if self.got >= self.expect {
            ctx.stop();
        } else {
            ctx.post_recv(0, 0, 99);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Like [`Receiver`] but never calls `stop`: the run drains to quiescence
/// (`StopCondition::QueueEmpty`), which lets the sim sanitizer check
/// liveness and byte conservation over the *entire* recovery tail instead
/// of cutting the simulation at the last delivery.
struct DrainReceiver {
    expect: u32,
    got: u32,
    bytes: u64,
}

impl Actor for DrainReceiver {
    fn on_start(&mut self, ctx: &mut ActorCtx) {
        for i in 0..u64::from(self.expect) {
            ctx.post_recv(0, 0, i);
        }
    }
    fn on_recv_complete(&mut self, _ctx: &mut ActorCtx, c: RecvCompletion) {
        self.got += 1;
        self.bytes += u64::from(c.len);
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
}

/// Run a lossy sender→receiver stream to quiescence and return
/// `(delivered, bytes, metrics-as-JSON)` after checking every sanitizer
/// invariant (conservation included).
fn drain_with_loss(
    len: u32,
    count: u32,
    strategy: CoalescingStrategy,
    loss: f64,
    seed: u64,
) -> (u32, u64, String) {
    let disturbance = DisturbanceConfig {
        loss_probability: loss,
        ..DisturbanceConfig::none()
    };
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(strategy)
        .disturbance(disturbance)
        .seed(seed)
        .build();
    cluster.add_actor(
        0,
        0,
        Box::new(Sender {
            dst: EndpointAddr::new(1, 0),
            len,
            count,
            sent: 0,
        }),
    );
    cluster.add_actor(
        1,
        0,
        Box::new(DrainReceiver {
            expect: count,
            got: 0,
            bytes: 0,
        }),
    );
    let stop = cluster.run(Time::from_secs(120));
    assert_eq!(
        stop,
        StopCondition::QueueEmpty,
        "recovery stalled: len {len} strategy {strategy:?} loss {loss}"
    );
    let report = cluster.sanitize();
    let violations = report.all_violations();
    assert!(
        violations.is_empty(),
        "sanitizer violations (len {len} strategy {strategy:?} loss {loss}):\n  {}",
        violations.join("\n  ")
    );
    let r = cluster.actor::<DrainReceiver>(1, 0).unwrap();
    let json = cluster.metrics().to_json().render_pretty();
    (r.got, r.bytes, json)
}

fn deliver(len: u32, count: u32, strategy: CoalescingStrategy) -> (u32, u64, u64) {
    deliver_with(len, count, strategy, DisturbanceConfig::none(), 1)
}

fn deliver_with(
    len: u32,
    count: u32,
    strategy: CoalescingStrategy,
    disturbance: DisturbanceConfig,
    seed: u64,
) -> (u32, u64, u64) {
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(strategy)
        .disturbance(disturbance)
        .seed(seed)
        .build();
    cluster.add_actor(
        0,
        0,
        Box::new(Sender {
            dst: EndpointAddr::new(1, 0),
            len,
            count,
            sent: 0,
        }),
    );
    cluster.add_actor(
        1,
        0,
        Box::new(Receiver {
            expect: count,
            got: 0,
            bytes: 0,
        }),
    );
    let stop = cluster.run(Time::from_secs(60));
    assert_eq!(stop, StopCondition::PredicateSatisfied, "delivery stalled");
    let r = cluster.actor::<Receiver>(1, 0).unwrap();
    (r.got, r.bytes, cluster.total_interrupts())
}

#[test]
fn every_size_class_delivers_under_every_strategy() {
    // Small (single packet), medium (fragmented eager), large (pull).
    let sizes = [
        0u32,
        1,
        128,
        129,
        4 << 10,
        32 << 10,
        (32 << 10) + 1,
        234 << 10,
    ];
    let strategies = [
        CoalescingStrategy::Disabled,
        CoalescingStrategy::Timeout { delay_us: 75 },
        CoalescingStrategy::OpenMx { delay_us: 75 },
        CoalescingStrategy::Stream { delay_us: 75 },
        CoalescingStrategy::Adaptive {
            min_delay_us: 0,
            max_delay_us: 75,
        },
    ];
    for &len in &sizes {
        for &strategy in &strategies {
            let (got, bytes, _) = deliver(len, 3, strategy);
            assert_eq!(got, 3, "len {len} strategy {strategy:?}");
            assert_eq!(bytes, 3 * u64::from(len));
        }
    }
}

#[test]
fn deliveries_survive_packet_loss() {
    // 1 % loss: retransmission recovers everything, for every size class.
    let disturbance = DisturbanceConfig {
        loss_probability: 0.01,
        ..DisturbanceConfig::none()
    };
    for &len in &[64u32, 16 << 10, 100 << 10] {
        let (got, bytes, _) = deliver_with(
            len,
            10,
            CoalescingStrategy::OpenMx { delay_us: 75 },
            disturbance,
            7,
        );
        assert_eq!(got, 10, "len {len} under loss");
        assert_eq!(bytes, 10 * u64::from(len));
    }
}

#[test]
fn lossy_runs_drain_clean_for_every_size_and_strategy() {
    // The Table I size classes (header-only, fragmented eager, pull) under
    // 2 % frame loss, for all five strategies: every message must be
    // delivered, every byte conserved, and the cluster must reach true
    // quiescence — no stranded protocol state, no packets owed by a NIC.
    let sizes: [(u32, u32); 3] = [(0, 6), (32 << 10, 6), (1 << 20, 3)];
    let strategies = [
        CoalescingStrategy::Disabled,
        CoalescingStrategy::Timeout { delay_us: 75 },
        CoalescingStrategy::OpenMx { delay_us: 75 },
        CoalescingStrategy::Stream { delay_us: 75 },
        CoalescingStrategy::Adaptive {
            min_delay_us: 0,
            max_delay_us: 75,
        },
    ];
    for &(len, count) in &sizes {
        for &strategy in &strategies {
            let (got, bytes, _) = drain_with_loss(len, count, strategy, 0.02, 13);
            assert_eq!(got, count, "len {len} strategy {strategy:?}");
            assert_eq!(bytes, u64::from(count) * u64::from(len));
        }
    }
}

#[test]
fn lossy_runs_are_deterministic_for_a_fixed_seed() {
    // Loss injection, retransmission, and recovery must not introduce any
    // run-to-run nondeterminism: the full metrics tree (every counter on
    // every layer) renders byte-identically for a fixed seed.
    let a = drain_with_loss(
        32 << 10,
        8,
        CoalescingStrategy::Stream { delay_us: 75 },
        0.02,
        23,
    );
    let b = drain_with_loss(
        32 << 10,
        8,
        CoalescingStrategy::Stream { delay_us: 75 },
        0.02,
        23,
    );
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2, "metrics JSON diverged between identical runs");
    // A different seed draws different losses (different retransmit work)
    // while still delivering everything.
    let c = drain_with_loss(
        32 << 10,
        8,
        CoalescingStrategy::Stream { delay_us: 75 },
        0.02,
        24,
    );
    assert_eq!(c.0, a.0);
    assert_eq!(c.1, a.1);
}

#[test]
fn deliveries_survive_heavy_jitter_reordering() {
    let disturbance = DisturbanceConfig {
        jitter_ns: 5_000, // far beyond one serialization time: real reordering
        ..DisturbanceConfig::none()
    };
    for &len in &[32 << 10, 200 << 10] {
        let (got, bytes, _) = deliver_with(
            len,
            5,
            CoalescingStrategy::Stream { delay_us: 75 },
            disturbance,
            11,
        );
        assert_eq!(got, 5, "len {len} under jitter");
        assert_eq!(bytes, 5 * u64::from(len));
    }
}

#[test]
fn runs_are_deterministic_across_identical_configs() {
    let a = deliver(32 << 10, 20, CoalescingStrategy::Stream { delay_us: 75 });
    let b = deliver(32 << 10, 20, CoalescingStrategy::Stream { delay_us: 75 });
    assert_eq!(a, b);
}

#[test]
fn different_seeds_change_disturbed_runs_but_not_results() {
    let disturbance = DisturbanceConfig {
        jitter_ns: 2_000,
        ..DisturbanceConfig::none()
    };
    let a = deliver_with(
        32 << 10,
        10,
        CoalescingStrategy::OpenMx { delay_us: 75 },
        disturbance,
        1,
    );
    let b = deliver_with(
        32 << 10,
        10,
        CoalescingStrategy::OpenMx { delay_us: 75 },
        disturbance,
        2,
    );
    // Same payload delivered...
    assert_eq!(a.0, b.0);
    assert_eq!(a.1, b.1);
}

#[test]
fn interrupt_counts_order_across_strategies() {
    // For a burst of medium messages: disabled >> openmx >= stream.
    let (_, _, disabled) = deliver(32 << 10, 10, CoalescingStrategy::Disabled);
    let (_, _, openmx) = deliver(32 << 10, 10, CoalescingStrategy::OpenMx { delay_us: 75 });
    let (_, _, stream) = deliver(32 << 10, 10, CoalescingStrategy::Stream { delay_us: 75 });
    assert!(
        disabled > openmx * 3,
        "disabled {disabled} vs openmx {openmx}"
    );
    assert!(stream <= openmx + 2, "stream {stream} vs openmx {openmx}");
}

#[test]
fn tiny_rx_ring_overflows_and_retransmission_recovers() {
    // A 16-slot ring against a 100 KiB pull with a slow receiver: the ring
    // must drop frames and the pull re-request machinery must still deliver
    // the message intact.
    let mut builder = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::Timeout { delay_us: 75 });
    builder.config_mut().nic.rx_ring_slots = 16;
    // Slow the receive path so the ring actually backs up.
    builder.config_mut().host.costs.copy_bytes_per_us = 100;
    let mut cluster = builder.build();
    cluster.add_actor(
        0,
        0,
        Box::new(Sender {
            dst: EndpointAddr::new(1, 0),
            len: 100 << 10,
            count: 2,
            sent: 0,
        }),
    );
    cluster.add_actor(
        1,
        0,
        Box::new(Receiver {
            expect: 2,
            got: 0,
            bytes: 0,
        }),
    );
    let stop = cluster.run(Time::from_secs(120));
    assert_eq!(
        stop,
        StopCondition::PredicateSatisfied,
        "must still deliver"
    );
    let m = cluster.metrics();
    let drops: u64 = m.nodes.iter().map(|n| n.nic.ring_drops.get()).sum();
    assert!(drops > 0, "the tiny ring should have overflowed");
    let r = cluster.actor::<Receiver>(1, 0).unwrap();
    assert_eq!(r.bytes, 2 * (100 << 10));
}

#[test]
fn jumbo_mtu_end_to_end() {
    // §IV-A: jumbo frames change fragment counts, not correctness.
    let mut cluster = ClusterBuilder::new()
        .nodes(2)
        .strategy(CoalescingStrategy::OpenMx { delay_us: 75 })
        .mtu(9_000)
        .build();
    cluster.add_actor(
        0,
        0,
        Box::new(Sender {
            dst: EndpointAddr::new(1, 0),
            len: 192 << 10,
            count: 3,
            sent: 0,
        }),
    );
    cluster.add_actor(
        1,
        0,
        Box::new(Receiver {
            expect: 3,
            got: 0,
            bytes: 0,
        }),
    );
    let stop = cluster.run(Time::from_secs(30));
    assert_eq!(stop, StopCondition::PredicateSatisfied);
    let r = cluster.actor::<Receiver>(1, 0).unwrap();
    assert_eq!(r.bytes, 3 * (192 << 10));
    // ~22 reply frames per message instead of ~132 at MTU 1500.
    let m = cluster.metrics();
    assert!(
        m.frames_carried < 3 * 40,
        "jumbo frames: {}",
        m.frames_carried
    );
}
